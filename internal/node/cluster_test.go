package node

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"fabricsharp/internal/protocol"
	"fabricsharp/internal/sched"
	"fabricsharp/internal/wire"
)

const dialTimeout = 10 * time.Second

// bootCluster starts an orderer and n peers on ephemeral 127.0.0.1 ports,
// registering cleanup. It returns the running nodes.
func bootCluster(t *testing.T, system sched.System, n int) (*Orderer, []*Peer) {
	t.Helper()
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("peer%d", i)
	}
	ord, err := StartOrderer(OrdererConfig{
		Listen:       "127.0.0.1:0",
		System:       system,
		PeerNames:    names,
		BlockSize:    10,
		BlockTimeout: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ord.Close() })
	peers := make([]*Peer, n)
	for i := range peers {
		p, err := StartPeer(PeerConfig{
			Name:         names[i],
			Listen:       "127.0.0.1:0",
			OrdererAddrs: []string{ord.Addr()},
			System:       system,
			PeerNames:    names,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		peers[i] = p
	}
	return ord, peers
}

func peerAddrs(peers []*Peer) []string {
	addrs := make([]string, len(peers))
	for i, p := range peers {
		addrs[i] = p.Addr()
	}
	return addrs
}

// driveContended pipelines txs contended read-modify-writes over hotKeys
// counters through the cluster: endorse + submit everything first (so many
// transactions share a snapshot — real contention), then poll every result.
func driveContended(t *testing.T, client *Client, txs, hotKeys int) (committed, aborted int) {
	t.Helper()
	ids := make([]string, 0, txs)
	for i := 0; i < txs; i++ {
		key := fmt.Sprintf("counter%d", i%hotKeys)
		tx, err := client.Endorse("kv", "rmw", key, "1")
		if err != nil {
			t.Fatalf("endorse %d: %v", i, err)
		}
		if err := client.SubmitTx(tx); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, string(tx.ID))
	}
	deadline := time.Now().Add(60 * time.Second)
	for _, id := range ids {
		for {
			res, err := client.PollResult(id)
			if err != nil {
				t.Fatalf("poll %s: %v", id, err)
			}
			if res.Found {
				if res.Code == protocol.Valid {
					committed++
				} else {
					aborted++
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("result %s never resolved", id)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	return committed, aborted
}

// awaitConvergence polls every peer until it reaches the orderer's sealed
// chain, then asserts bit-identical tips and identical state fingerprints.
func awaitConvergence(t *testing.T, client *Client, ord *Orderer) {
	t.Helper()
	ordStatus, err := client.OrdererStatus()
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	statuses := make([]wire.Status, client.Peers())
	for i := 0; i < client.Peers(); i++ {
		for {
			st, err := client.PeerStatus(i)
			if err != nil {
				t.Fatalf("peer %d status: %v", i, err)
			}
			if st.Blocks >= ordStatus.Blocks {
				statuses[i] = st
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("peer %d stuck at %d/%d blocks (orderer err: %v)",
					i, st.Blocks, ordStatus.Blocks, ord.Err())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	for i, st := range statuses {
		if !bytes.Equal(st.TipHash, ordStatus.TipHash) {
			t.Fatalf("peer %d tip hash %x diverges from orderer %x", i, st.TipHash, ordStatus.TipHash)
		}
		if st.Blocks != ordStatus.Blocks {
			t.Fatalf("peer %d has %d blocks, orderer %d", i, st.Blocks, ordStatus.Blocks)
		}
		if st.Height != statuses[0].Height {
			t.Fatalf("peer %d height %d != peer 0 height %d", i, st.Height, statuses[0].Height)
		}
		if st.StateHash != statuses[0].StateHash {
			t.Fatalf("peer %d state fingerprint diverges from peer 0", i)
		}
	}
}

// TestClusterConvergenceAllSystems is the tentpole assertion: a
// 1-orderer/3-peer cluster wired over real TCP sockets, driven with a
// contended workload under each of the five systems, must leave every peer
// with a bit-identical chain (tip hash) and identical state (height and
// fingerprint) — serialization, framing, and delivery included.
func TestClusterConvergenceAllSystems(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-system TCP cluster is not a -short test")
	}
	for _, system := range sched.Systems() {
		system := system
		t.Run(string(system), func(t *testing.T) {
			ord, peers := bootCluster(t, system, 3)
			client, err := DialClient("loadgen", []string{ord.Addr()}, peerAddrs(peers), dialTimeout)
			if err != nil {
				t.Fatal(err)
			}
			defer client.Close()
			committed, aborted := driveContended(t, client, 90, 4)
			if committed == 0 {
				t.Fatalf("nothing committed (%d aborted)", aborted)
			}
			t.Logf("%s: %d committed, %d aborted", system, committed, aborted)
			awaitConvergence(t, client, ord)
			if err := ord.Err(); err != nil {
				t.Fatalf("orderer failed: %v", err)
			}
			for i, p := range peers {
				if err := p.Err(); err != nil {
					t.Fatalf("peer %d failed: %v", i, err)
				}
			}
		})
	}
}

// TestClusterSealedVerdictsTravel pins that blocks arriving over the wire
// still carry the orderer's sealed verdicts and that peers assert against
// them (the byte-equality contract of the commit pipeline): a cluster run
// ends with every peer's stored validation codes equal to the orderer's.
func TestClusterSealedVerdictsTravel(t *testing.T) {
	ord, peers := bootCluster(t, sched.SystemSharp, 2)
	client, err := DialClient("verdicts", []string{ord.Addr()}, peerAddrs(peers), dialTimeout)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	driveContended(t, client, 40, 2)
	awaitConvergence(t, client, ord)
	ordChain := ord.Network().OrdererChain(0)
	for _, p := range peers {
		if p.Chain().Len() != ordChain.Len() {
			t.Fatalf("chain length mismatch: %d vs %d", p.Chain().Len(), ordChain.Len())
		}
		for n := uint64(1); n <= uint64(ordChain.Len()); n++ {
			want, _ := ordChain.Get(n)
			got, ok := p.Chain().Get(n)
			if !ok {
				t.Fatalf("peer missing block %d", n)
			}
			if len(got.Validation) != len(want.Validation) {
				t.Fatalf("block %d: verdict count mismatch", n)
			}
			for i := range got.Validation {
				if got.Validation[i] != want.Validation[i] {
					t.Fatalf("block %d tx %d: peer verdict %v != sealed %v", n, i, got.Validation[i], want.Validation[i])
				}
			}
		}
	}
}
