package node

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"fabricsharp/internal/scenario"
	"fabricsharp/internal/sched"
	"fabricsharp/internal/transport"
	"fabricsharp/internal/workload"
)

// chaosDial returns a dial function whose connections inject Send-side
// faults with the given probabilities (plus up to 1ms of delay, which
// reorders frames across connections). Each connection draws its fault
// sequence from its own rng, seeded from base and a per-connection counter.
// dropProb must stay 0 on subscriber dials: the one Subscribe frame is never
// retransmitted (see transport.Subscriber.Dial).
func chaosDial(base int64, dropProb, dupProb float64) func(string) (transport.FrameConn, error) {
	var n atomic.Int64
	return func(addr string) (transport.FrameConn, error) {
		conn, err := transport.Dial(addr)
		if err != nil {
			return nil, err
		}
		fc := transport.NewFaultConn(conn, base+n.Add(1))
		fc.DropProb = dropProb
		fc.DupProb = dupProb
		fc.MaxDelay = time.Millisecond
		return fc, nil
	}
}

// driveScenario pushes n generator operations through the cluster. A refused
// endorsement is the contract rejecting the proposal (e.g. a bid below the
// standing high) — an abort by design, not a cluster failure — so it counts
// toward aborted; any other error fails the test.
func driveScenario(t *testing.T, client *Client, gen workload.Generator, n int) (committed, aborted int) {
	t.Helper()
	for i := 0; i < n; i++ {
		op := gen.Next()
		res, err := client.Submit(op.Contract, op.Function, op.Args...)
		if err != nil {
			if strings.Contains(err.Error(), "endorsement refused") {
				aborted++
				continue
			}
			t.Fatalf("submit %d (%s.%s): %v", i, op.Contract, op.Function, err)
		}
		if res.Code.Committed() {
			committed++
		} else {
			aborted++
		}
	}
	return committed, aborted
}

// TestScenarioChaosMatrix is the registry's end-to-end contract: every
// registered scenario runs against a 3-orderer Raft / 2-peer wire cluster
// whose links drop, duplicate, and delay frames, loses a follower orderer
// and a peer mid-run, crosses several intern-table compaction epochs while
// they are down, and resurrects both. Afterwards every replica — surviving
// orderers, the restarted orderer, the surviving peer, and the reborn peer —
// must hold the bit-identical chain, the peers identical state fingerprints,
// and the final state must satisfy the scenario's own invariant.
func TestScenarioChaosMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("the scenario chaos matrix is not a -short test")
	}
	// Two scenarios run under plain Fabric so the matrix exercises both MVCC
	// pipelines; the rest take fabric#'s reordering + rescue path.
	fabricScenarios := map[string]bool{"token": true, "auction": true}
	for si, name := range scenario.Names() {
		si, name := si, name
		t.Run(name, func(t *testing.T) {
			sc, ok := scenario.Get(name)
			if !ok {
				t.Fatalf("scenario %q vanished from the registry", name)
			}
			system := sched.SystemSharp
			if fabricScenarios[name] {
				system = sched.SystemFabric
			}
			// A small pool keeps every scenario contended; 8 satisfies the
			// strictest constructor floor (msmallbank needs >= 4 accounts).
			params := scenario.Params{Accounts: 8, Theta: 0.5, ReadHot: 0.3, WriteHot: 0.3}
			genesis := sc.GenesisWrites(params)
			peerNames := []string{"peer0", "peer1"}

			cfgs := raftOrdererConfigs(t, system, 3, peerNames)
			for i := range cfgs {
				cfgs[i].BlockSize = 4
				cfgs[i].MaxSpan = 8
				cfgs[i].CompactEvery = 2
				cfgs[i].RaftDir = t.TempDir()
				cfgs[i].Genesis = genesis
				// Raft absorbs dropped frames through retransmission, so the
				// inter-orderer links take the full fault menu.
				cfgs[i].RaftDial = chaosDial(int64(1+1000*si+i), 0.2, 0.15)
			}
			ords := make([]*Orderer, len(cfgs))
			ordererAddrs := make([]string, len(cfgs))
			for i, cfg := range cfgs {
				o, err := StartOrderer(cfg)
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { o.Close() })
				ords[i] = o
				ordererAddrs[i] = o.Addr()
			}
			peerCfg := func(pn string) PeerConfig {
				return PeerConfig{
					Name:         pn,
					Listen:       "127.0.0.1:0",
					OrdererAddrs: ordererAddrs,
					System:       system,
					PeerNames:    peerNames,
					Genesis:      genesis,
					Rescue:       true,
					// Delivery links duplicate and delay but never drop.
					DialOrderer: chaosDial(int64(5001+1000*si), 0, 0.15),
				}
			}
			peers := make([]*Peer, len(peerNames))
			for i, pn := range peerNames {
				p, err := StartPeer(peerCfg(pn))
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { p.Close() })
				peers[i] = p
			}
			// Drive through peer0 only: endorsement has no failover, and
			// peer1 dies mid-run.
			client, err := DialClient("chaos-"+name, ordererAddrs, []string{peers[0].Addr()}, dialTimeout)
			if err != nil {
				t.Fatal(err)
			}
			defer client.Close()

			gen, err := sc.Generator(rand.New(rand.NewSource(int64(9000+si))), params)
			if err != nil {
				t.Fatal(err)
			}

			committed, aborted := driveScenario(t, client, gen, 24)

			// Crash a follower orderer (the surviving quorum keeps sealing).
			lead := waitRaftLeader(t, ords, 15*time.Second)
			down := (lead + 1) % len(ords)
			ords[down].Close()
			ords[down] = nil

			// Cross several compaction epochs (BlockSize=4, CompactEvery=2)
			// while it is gone, losing peer1 partway through.
			c, a := driveScenario(t, client, gen, 12)
			committed, aborted = committed+c, aborted+a
			if err := peers[1].Close(); err != nil {
				t.Fatal(err)
			}
			c, a = driveScenario(t, client, gen, 12)
			committed, aborted = committed+c, aborted+a

			// Resurrect both: a replacement peer1 (fresh state, same genesis,
			// catches up from block 1) and the downed orderer (persisted
			// term, empty log, catches up from the leader and re-derives
			// every block through the same compaction schedule).
			reborn, err := StartPeer(peerCfg("peer1"))
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { reborn.Close() })
			rebornOrd, err := StartOrderer(cfgs[down])
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { rebornOrd.Close() })
			ords[down] = rebornOrd

			c, a = driveScenario(t, client, gen, 8)
			committed, aborted = committed+c, aborted+a
			if committed == 0 {
				t.Fatalf("nothing committed (%d aborted)", aborted)
			}
			t.Logf("%s on %s: %d committed, %d aborted", name, system, committed, aborted)

			// With every result resolved no new blocks can seal, so all
			// replicas converge to one final chain. The reference is the
			// orderer that led through the outage.
			ref := ords[lead].Network().OrdererChain(0)
			deadline := time.Now().Add(60 * time.Second)
			waitTip := func(what string, tip func() (int, []byte)) {
				t.Helper()
				for {
					l, h := tip()
					if l == ref.Len() && bytes.Equal(h, ref.TipHash()) {
						return
					}
					if time.Now().After(deadline) {
						t.Fatalf("%s stuck at %d/%d blocks (tip %x, want %x)",
							what, l, ref.Len(), h, ref.TipHash())
					}
					time.Sleep(5 * time.Millisecond)
				}
			}
			for i, o := range ords {
				if o == nil || i == lead {
					continue
				}
				o := o
				waitTip(fmt.Sprintf("orderer %d", i), func() (int, []byte) {
					ch := o.Network().OrdererChain(0)
					return ch.Len(), ch.TipHash()
				})
			}
			waitTip("peer0", func() (int, []byte) {
				return peers[0].Chain().Len(), peers[0].Chain().TipHash()
			})
			waitTip("reborn peer1", func() (int, []byte) {
				return reborn.Chain().Len(), reborn.Chain().TipHash()
			})
			if ref.Len() < 6 {
				t.Fatalf("sealed only %d blocks; the outage must span compaction epochs", ref.Len())
			}

			// Identical chains must yield identical states, genesis included.
			if got, want := reborn.State().StateFingerprint(), peers[0].State().StateFingerprint(); got != want {
				t.Fatalf("reborn peer state fingerprint %s diverges from survivor %s", got, want)
			}
			// And that state must satisfy the scenario's own invariant.
			if err := sc.CheckInvariant(peers[0].State(), params); err != nil {
				t.Fatalf("invariant after chaos: %v", err)
			}
			if err := peers[0].Err(); err != nil {
				t.Fatalf("surviving peer failed: %v", err)
			}
			if err := reborn.Err(); err != nil {
				t.Fatalf("reborn peer failed: %v", err)
			}
		})
	}
}
