package node

import (
	"bytes"
	"fmt"
	"net"
	"testing"
	"time"

	"fabricsharp/internal/sched"
)

// reserveAddrs grabs n distinct ephemeral 127.0.0.1 ports and releases them,
// so the Raft membership and redirect map are known before any process
// starts.
func reserveAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = l.Addr().String()
		_ = l.Close()
	}
	return addrs
}

// raftOrdererConfigs builds n orderer configs forming one Raft cluster:
// pre-reserved client and Raft ports, a full redirect map, fast timers.
func raftOrdererConfigs(t *testing.T, system sched.System, n int, peerNames []string) []OrdererConfig {
	t.Helper()
	clientAddrs := reserveAddrs(t, n)
	raftAddrs := reserveAddrs(t, n)
	redirects := make(map[string]string, n)
	for i := range raftAddrs {
		redirects[raftAddrs[i]] = clientAddrs[i]
	}
	cfgs := make([]OrdererConfig, n)
	for i := range cfgs {
		cfgs[i] = OrdererConfig{
			Listen:              clientAddrs[i],
			System:              system,
			PeerNames:           peerNames,
			Orderers:            1, // the Raft cluster is the replication under test
			BlockSize:           10,
			BlockTimeout:        25 * time.Millisecond,
			Rescue:              true,
			RaftID:              raftAddrs[i],
			RaftCluster:         raftAddrs,
			RaftRedirects:       redirects,
			RaftElectionTimeout: 100 * time.Millisecond,
		}
	}
	return cfgs
}

// waitRaftLeader polls until one live orderer leads, returning its index.
func waitRaftLeader(t *testing.T, ords []*Orderer, timeout time.Duration) int {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		for i, o := range ords {
			if o != nil && o.Raft().IsLeader() {
				return i
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("no Raft leader elected")
	return -1
}

// driveCommitted pushes txs contended read-modify-writes through the
// cluster and returns how many the client observed committed (rescued
// counts — the ledger seals them as committed verdicts).
func driveCommitted(t *testing.T, client *Client, txs, hotKeys int) int {
	t.Helper()
	committed := 0
	for i := 0; i < txs; i++ {
		res, err := client.Submit("kv", "rmw", fmt.Sprintf("counter%d", i%hotKeys), "1")
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if res.Code.Committed() {
			committed++
		}
	}
	return committed
}

// TestRaftClusterFailoverConvergence is the chaos smoke in miniature: a
// 3-orderer Raft cluster with 2 peers loses its leader mid-load; clients
// follow the NotLeader redirects, no committed transaction is lost, and the
// surviving orderers plus both peers end bit-identical.
func TestRaftClusterFailoverConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process-shaped Raft cluster is not a -short test")
	}
	peerNames := []string{"peer0", "peer1"}
	cfgs := raftOrdererConfigs(t, sched.SystemSharp, 3, peerNames)
	ords := make([]*Orderer, len(cfgs))
	ordererAddrs := make([]string, len(cfgs))
	for i, cfg := range cfgs {
		o, err := StartOrderer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { o.Close() })
		ords[i] = o
		ordererAddrs[i] = o.Addr()
	}
	peers := make([]*Peer, len(peerNames))
	for i, name := range peerNames {
		p, err := StartPeer(PeerConfig{
			Name:         name,
			Listen:       "127.0.0.1:0",
			OrdererAddrs: ordererAddrs,
			System:       sched.SystemSharp,
			PeerNames:    peerNames,
			Rescue:       true,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		peers[i] = p
	}
	client, err := DialClient("chaos", ordererAddrs, peerAddrs(peers), dialTimeout)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	committed := driveCommitted(t, client, 60, 4)

	// Kill the leader mid-load; the survivors hold a quorum.
	lead := waitRaftLeader(t, ords, 10*time.Second)
	ords[lead].Close()
	ords[lead] = nil

	committed += driveCommitted(t, client, 60, 4)
	if committed == 0 {
		t.Fatal("nothing committed")
	}
	if waitRaftLeader(t, ords, 15*time.Second) == lead {
		t.Fatal("dead orderer still leads")
	}

	// Survivor agreement: bit-identical tips at equal heights, and the
	// replicated ledger accounts for every client-acknowledged commit.
	var survivors []*Orderer
	for _, o := range ords {
		if o != nil {
			survivors = append(survivors, o)
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		a, b := survivors[0].Network().OrdererChain(0), survivors[1].Network().OrdererChain(0)
		if a.Len() == b.Len() && bytes.Equal(a.TipHash(), b.TipHash()) && a.Len() > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("survivors never agreed: %d/%x vs %d/%x", a.Len(), a.TipHash(), b.Len(), b.TipHash())
		}
		time.Sleep(5 * time.Millisecond)
	}
	ledgerCommitted := committedTxCount(survivors[0].Network().OrdererChain(0))
	if ledgerCommitted < uint64(committed) {
		t.Fatalf("lost committed transactions: clients saw %d, ledger holds %d", committed, ledgerCommitted)
	}

	// Both peers (whose subscriptions failed over) converge on the same
	// chain and state.
	st, err := client.OrdererStatus()
	if err != nil {
		t.Fatal(err)
	}
	for i := range peers {
		for {
			ps, err := client.PeerStatus(i)
			if err != nil {
				t.Fatal(err)
			}
			if ps.Blocks >= st.Blocks && bytes.Equal(ps.TipHash, st.TipHash) {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("peer %d stuck at %d/%d blocks", i, ps.Blocks, st.Blocks)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	s0, err := client.PeerStatus(0)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := client.PeerStatus(1)
	if err != nil {
		t.Fatal(err)
	}
	if s0.StateHash != s1.StateHash {
		t.Fatalf("peer state fingerprints diverge: %s vs %s", s0.StateHash, s1.StateHash)
	}
	if client.Redirects.Value() == 0 && peers[0].Failovers()+peers[1].Failovers() == 0 {
		t.Log("note: failover happened without redirects or resubscriptions (timing)")
	}
}

// TestOrdererRestartAcrossCompactionEpochUnderRaft extends
// TestRestartAcrossCompactionEpoch to the wire cluster: a follower orderer
// crashes, misses several blocks spanning intern-table compaction epochs,
// restarts with its persisted term/vote and an empty log, catches up from
// the leader, and re-derives bit-identical blocks through the same epoch
// schedule.
func TestOrdererRestartAcrossCompactionEpochUnderRaft(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process-shaped Raft cluster is not a -short test")
	}
	peerNames := []string{"peer0"}
	cfgs := raftOrdererConfigs(t, sched.SystemSharp, 3, peerNames)
	for i := range cfgs {
		cfgs[i].BlockSize = 2
		cfgs[i].MaxSpan = 4
		cfgs[i].CompactEvery = 2
		cfgs[i].RaftDir = t.TempDir()
	}
	ords := make([]*Orderer, len(cfgs))
	ordererAddrs := make([]string, len(cfgs))
	for i, cfg := range cfgs {
		o, err := StartOrderer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { o.Close() })
		ords[i] = o
		ordererAddrs[i] = o.Addr()
	}
	peer, err := StartPeer(PeerConfig{
		Name:         "peer0",
		Listen:       "127.0.0.1:0",
		OrdererAddrs: ordererAddrs,
		System:       sched.SystemSharp,
		PeerNames:    peerNames,
		Rescue:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { peer.Close() })
	client, err := DialClient("epoch", ordererAddrs, []string{peer.Addr()}, dialTimeout)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Churn through rotating keys so compaction has keys to retire.
	for i := 0; i < 8; i++ {
		if _, err := client.Submit("kv", "put", fmt.Sprintf("g%d:k%d", i/4, i), "v1"); err != nil {
			t.Fatal(err)
		}
	}

	// Crash a follower (not the leader: the cluster must keep sealing).
	lead := waitRaftLeader(t, ords, 10*time.Second)
	down := (lead + 1) % len(ords)
	ords[down].Close()
	ords[down] = nil

	// Cross at least two more compaction epochs while it is gone.
	for i := 0; i < 8; i++ {
		if _, err := client.Submit("kv", "put", fmt.Sprintf("h%d:k%d", i/4, i), "v2"); err != nil {
			t.Fatal(err)
		}
	}
	liveIdx := lead
	if ords[liveIdx] == nil {
		liveIdx = (down + 1) % len(ords)
	}
	want := ords[liveIdx].Network().OrdererChain(0)
	if want.Len() < 8 {
		t.Fatalf("sealed only %d blocks, need >= 8 (four compaction epochs)", want.Len())
	}

	// Restart with the same identity, ports, and state dir: the persisted
	// term survives, the log catches up over the wire, and the shadow
	// pipeline re-derives every block — compaction boundaries included.
	reborn, err := StartOrderer(cfgs[down])
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { reborn.Close() })
	deadline := time.Now().Add(30 * time.Second)
	for {
		got := reborn.Network().OrdererChain(0)
		if got.Len() >= want.Len() && bytes.Equal(got.TipHash(), want.TipHash()) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restarted orderer stuck at %d/%d blocks (tip %x want %x)",
				got.Len(), want.Len(), got.TipHash(), want.TipHash())
		}
		time.Sleep(5 * time.Millisecond)
	}
	for n := uint64(1); n <= uint64(want.Len()); n++ {
		wb, _ := want.Get(n)
		gb, ok := reborn.Network().OrdererChain(0).Get(n)
		if !ok {
			t.Fatalf("restarted orderer missing block %d", n)
		}
		if !bytes.Equal(wb.Hash(), gb.Hash()) {
			t.Fatalf("block %d diverges after restart across compaction epochs", n)
		}
		for i := range wb.Validation {
			if wb.Validation[i] != gb.Validation[i] {
				t.Fatalf("block %d tx %d: verdict %v != %v", n, i, gb.Validation[i], wb.Validation[i])
			}
		}
	}
}
