package commit

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"fabricsharp/internal/conflict"
	"fabricsharp/internal/identity"
	"fabricsharp/internal/ledger"
	"fabricsharp/internal/protocol"
	"fabricsharp/internal/seqno"
	"fabricsharp/internal/statedb"
	"fabricsharp/internal/validation"
)

// testEnv bundles an MSP with one endorsing peer identity.
type testEnv struct {
	msp    *identity.Service
	peer   *identity.Identity
	policy identity.Policy
}

func newTestEnv(t *testing.T) *testEnv {
	t.Helper()
	msp := identity.NewService()
	peer, err := msp.Enroll("peer0", identity.RolePeer)
	if err != nil {
		t.Fatal(err)
	}
	return &testEnv{msp: msp, peer: peer, policy: identity.SignedBy("peer0")}
}

func (e *testEnv) sign(tx *protocol.Transaction) {
	tx.Endorsements = []protocol.Endorsement{{
		EndorserID: e.peer.ID,
		Signature:  e.peer.Sign(tx.Digest()),
	}}
}

// seedState commits block 1 writing keys k0..k{n-1} and returns the db.
func seedState(t *testing.T, n int) *statedb.DB {
	t.Helper()
	db, err := statedb.New(statedb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var writes []statedb.BlockWrites
	for i := 0; i < n; i++ {
		writes = append(writes, statedb.BlockWrites{
			Pos:    uint32(i + 1),
			Writes: []protocol.WriteItem{{Key: fmt.Sprintf("k%d", i), Value: []byte("seed")}},
		})
	}
	if err := db.ApplyBlock(1, writes); err != nil {
		t.Fatal(err)
	}
	return db
}

// randomBlock builds block 2 over the seeded keys: a mix of fresh reads,
// stale reads, unsigned transactions, and overlapping writes.
func randomBlock(t *testing.T, env *testEnv, db *statedb.DB, rng *rand.Rand, txCount, keyPool int) *ledger.Block {
	t.Helper()
	var txs []*protocol.Transaction
	for i := 0; i < txCount; i++ {
		tx := &protocol.Transaction{ID: protocol.TxID(fmt.Sprintf("t%d", i)), SnapshotBlock: 1}
		for r := 0; r < 1+rng.Intn(3); r++ {
			key := fmt.Sprintf("k%d", rng.Intn(keyPool))
			var ver seqno.Seq
			if vv, ok := db.Get(key); ok {
				ver = vv.Version
			}
			if rng.Intn(5) == 0 { // stale read
				ver = seqno.Commit(1, uint32(keyPool+1+rng.Intn(5)))
			}
			tx.RWSet.Reads = append(tx.RWSet.Reads, protocol.ReadItem{Key: key, Version: ver})
		}
		for w := 0; w < rng.Intn(3); w++ {
			tx.RWSet.Writes = append(tx.RWSet.Writes, protocol.WriteItem{
				Key: fmt.Sprintf("k%d", rng.Intn(keyPool)), Value: []byte(fmt.Sprintf("v%d", i)),
			})
		}
		if rng.Intn(6) != 0 { // 1 in 6 stays unsigned → endorsement failure
			env.sign(tx)
		}
		txs = append(txs, tx)
	}
	chain, err := ledger.NewChain(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := chain.Seal(nil, nil); err != nil { // block 1 placeholder
		t.Fatal(err)
	}
	blk, err := chain.Seal(txs, nil)
	if err != nil {
		t.Fatal(err)
	}
	return blk
}

// TestParallelMatchesSequential is the core refactor-safety property: for
// randomized contended blocks, the parallel validator produces exactly the
// sequential reference's codes and final state.
func TestParallelMatchesSequential(t *testing.T) {
	env := newTestEnv(t)
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		db := seedState(t, 8)
		blk := randomBlock(t, env, db, rng, 2+rng.Intn(30), 8)

		seqDB, parDB := db.Clone(), db.Clone()
		wantCodes, err := validation.ValidateAndCommit(seqDB, blk, validation.Options{
			MVCC: true, MSP: env.msp, Policy: env.policy,
		})
		if err != nil {
			t.Fatal(err)
		}
		res := ValidateBlock(parDB, blk, Options{Options: validation.Options{MVCC: true, MSP: env.msp, Policy: env.policy}})
		if err := parDB.ApplyBlock(blk.Header.Number, res.Writes); err != nil {
			t.Fatal(err)
		}
		for i := range wantCodes {
			if res.Codes[i] != wantCodes[i] {
				t.Fatalf("trial %d: tx %d code = %v want %v", trial, i, res.Codes[i], wantCodes[i])
			}
		}
		if seqDB.StateFingerprint() != parDB.StateFingerprint() {
			t.Fatalf("trial %d: state diverged", trial)
		}
		if seqDB.Height() != parDB.Height() {
			t.Fatalf("trial %d: heights diverged", trial)
		}
	}
}

// TestParallelMatchesSequentialNoMVCC covers the Sharp/Focc-s fast path:
// endorsement checks only, no conflict partition.
func TestParallelMatchesSequentialNoMVCC(t *testing.T) {
	env := newTestEnv(t)
	rng := rand.New(rand.NewSource(7))
	db := seedState(t, 8)
	blk := randomBlock(t, env, db, rng, 20, 8)

	seqDB, parDB := db.Clone(), db.Clone()
	wantCodes, err := validation.ValidateAndCommit(seqDB, blk, validation.Options{
		MSP: env.msp, Policy: env.policy,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := ValidateBlock(parDB, blk, Options{Options: validation.Options{MSP: env.msp, Policy: env.policy}})
	if res.Groups != 0 {
		t.Errorf("no-MVCC path partitioned into %d groups", res.Groups)
	}
	if err := parDB.ApplyBlock(blk.Header.Number, res.Writes); err != nil {
		t.Fatal(err)
	}
	for i := range wantCodes {
		if res.Codes[i] != wantCodes[i] {
			t.Fatalf("tx %d code = %v want %v", i, res.Codes[i], wantCodes[i])
		}
	}
	if seqDB.StateFingerprint() != parDB.StateFingerprint() {
		t.Fatal("state diverged")
	}
}

func TestPartitionByConflict(t *testing.T) {
	tx := func(id string, reads ...string) *protocol.Transaction {
		out := &protocol.Transaction{ID: protocol.TxID(id)}
		for _, k := range reads {
			out.RWSet.Reads = append(out.RWSet.Reads, protocol.ReadItem{Key: k})
		}
		return out
	}
	withWrites := func(t0 *protocol.Transaction, keys ...string) *protocol.Transaction {
		for _, k := range keys {
			t0.RWSet.Writes = append(t0.RWSet.Writes, protocol.WriteItem{Key: k, Value: []byte("v")})
		}
		return t0
	}
	txs := []*protocol.Transaction{
		withWrites(tx("a", "x"), "x"), // group {a, c} via x
		withWrites(tx("b", "y"), "z"), // group {b, d} via z
		withWrites(tx("c"), "x"),      // joins a
		withWrites(tx("d", "z"), "w"), // joins b
		withWrites(tx("e", "q"), "q"), // alone
		tx("f", "x", "z"),             // bridges both → one merged group
	}
	// f reads x and z, merging {a,c} and {b,d} into one group of 5, plus {e}.
	codes := make([]protocol.ValidationCode, len(txs))
	valid := func(i int) bool { return codes[i] == protocol.Valid }
	groups := conflict.Partition(txs, valid)
	if len(groups) != 2 {
		t.Fatalf("groups = %d (%v)", len(groups), groups)
	}
	sizes := map[int]bool{len(groups[0]): true, len(groups[1]): true}
	if !sizes[5] || !sizes[1] {
		t.Fatalf("group sizes = %v", groups)
	}
	for _, g := range groups {
		for i := 1; i < len(g); i++ {
			if g[i] <= g[i-1] {
				t.Fatalf("group not in block order: %v", g)
			}
		}
	}
	// An endorsement-failed transaction leaves the partition entirely.
	codes[5] = protocol.EndorsementFailure
	groups = conflict.Partition(txs, valid)
	if len(groups) != 3 {
		t.Fatalf("groups after exclusion = %d (%v)", len(groups), groups)
	}
}

// TestPartitionHotReadOnlyKey: a key every transaction reads but none
// writes keeps its committed version for the whole block, so it must not
// serialize the partition.
func TestPartitionHotReadOnlyKey(t *testing.T) {
	const n = 16
	txs := make([]*protocol.Transaction, n)
	for i := range txs {
		txs[i] = &protocol.Transaction{
			ID: protocol.TxID(fmt.Sprintf("t%d", i)),
			RWSet: protocol.RWSet{
				Reads:  []protocol.ReadItem{{Key: "config"}}, // hot, never written
				Writes: []protocol.WriteItem{{Key: fmt.Sprintf("own%d", i), Value: []byte("v")}},
			},
		}
	}
	all := func(int) bool { return true }
	groups := conflict.Partition(txs, all)
	if len(groups) != n {
		t.Fatalf("hot read-only key collapsed partition to %d groups, want %d", len(groups), n)
	}
	// But one writer of the hot key couples every reader.
	txs[0].RWSet.Writes = append(txs[0].RWSet.Writes, protocol.WriteItem{Key: "config", Value: []byte("v2")})
	groups = conflict.Partition(txs, all)
	if len(groups) != 1 {
		t.Fatalf("written hot key split into %d groups, want 1", len(groups))
	}
}

func TestCommitterPipeline(t *testing.T) {
	env := newTestEnv(t)
	source, err := ledger.NewChain(nil)
	if err != nil {
		t.Fatal(err)
	}
	state, err := statedb.New(statedb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	peerChain, err := ledger.NewChain(nil)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var committed []uint64
	c := New(Config{
		Name:       "peer-test",
		State:      state,
		Chain:      peerChain,
		Validation: Options{Options: validation.Options{MVCC: true, MSP: env.msp, Policy: env.policy}},
		OnCommit: func(blk *ledger.Block, codes []protocol.ValidationCode) {
			mu.Lock()
			committed = append(committed, blk.Header.Number)
			mu.Unlock()
		},
		OnError: func(err error) { t.Errorf("committer error: %v", err) },
	})
	c.Start()
	const blocks = 10
	for b := 0; b < blocks; b++ {
		var txs []*protocol.Transaction
		for i := 0; i < 4; i++ {
			tx := &protocol.Transaction{
				ID: protocol.TxID(fmt.Sprintf("b%d-t%d", b, i)),
				RWSet: protocol.RWSet{Writes: []protocol.WriteItem{
					{Key: fmt.Sprintf("key-%d-%d", b, i), Value: []byte("v")},
				}},
			}
			env.sign(tx)
			txs = append(txs, tx)
		}
		blk, err := source.Seal(txs, nil)
		if err != nil {
			t.Fatal(err)
		}
		c.Deliver(blk)
	}
	c.Close()
	if !c.Idle() {
		t.Error("closed committer not idle")
	}
	if len(committed) != blocks {
		t.Fatalf("committed %d blocks, want %d", len(committed), blocks)
	}
	for i, n := range committed {
		if n != uint64(i+1) {
			t.Fatalf("commit order %v", committed)
		}
	}
	if state.Height() != blocks {
		t.Errorf("height = %d", state.Height())
	}
	if err := peerChain.Verify(); err != nil {
		t.Error(err)
	}
	st := c.Stats()
	if st.BlocksCommitted.Value() != blocks {
		t.Errorf("BlocksCommitted = %d", st.BlocksCommitted.Value())
	}
	if st.TxsValidated.Value() != blocks*4 {
		t.Errorf("TxsValidated = %d", st.TxsValidated.Value())
	}
	if st.CommitLatencyMS.N() != blocks {
		t.Errorf("latency samples = %d", st.CommitLatencyMS.N())
	}
	if st.QueueDepth.Value() != 0 {
		t.Errorf("queue depth = %d", st.QueueDepth.Value())
	}
}

// TestReplayStoredMatchesLiveCommit drives the same chain through the live
// path and the replay path and checks they land on identical state.
func TestReplayStoredMatchesLiveCommit(t *testing.T) {
	env := newTestEnv(t)
	source, _ := ledger.NewChain(nil)
	liveState, _ := statedb.New(statedb.Options{})
	liveChain, _ := ledger.NewChain(nil)
	live := New(Config{
		Name: "live", State: liveState, Chain: liveChain,
		Validation: Options{Options: validation.Options{MVCC: true, MSP: env.msp, Policy: env.policy}},
		OnError:    func(err error) { t.Errorf("live: %v", err) },
	})
	live.Start()
	for b := 0; b < 5; b++ {
		var txs []*protocol.Transaction
		for i := 0; i < 3; i++ {
			tx := &protocol.Transaction{
				ID: protocol.TxID(fmt.Sprintf("b%d-t%d", b, i)),
				RWSet: protocol.RWSet{Writes: []protocol.WriteItem{
					{Key: fmt.Sprintf("hot%d", i), Value: []byte(fmt.Sprintf("b%d", b))},
				}},
			}
			env.sign(tx)
			txs = append(txs, tx)
		}
		blk, err := source.Seal(txs, nil)
		if err != nil {
			t.Fatal(err)
		}
		live.Deliver(blk)
	}
	live.Close()

	// Replay the live peer's chain (blocks now carry validation codes) into
	// a fresh committer, as a restart would.
	replayState, _ := statedb.New(statedb.Options{})
	replayChain, _ := ledger.NewChain(nil)
	replay := New(Config{Name: "replay", State: replayState, Chain: replayChain})
	var replayErr error
	liveChain.ForEach(func(b *ledger.Block) bool {
		replayErr = replay.ReplayStored(b)
		return replayErr == nil
	})
	if replayErr != nil {
		t.Fatal(replayErr)
	}
	if replayState.StateFingerprint() != liveState.StateFingerprint() {
		t.Error("replayed state differs from live state")
	}
	if replayState.Height() != liveState.Height() {
		t.Errorf("heights: replay %d live %d", replayState.Height(), liveState.Height())
	}
	if replayChain.TipHash() == nil {
		t.Fatal("replay chain empty")
	}

	// A stored block stripped of its codes is rejected, not guessed at.
	bad := &ledger.Block{Header: ledger.Header{Number: 99}}
	bad.Transactions = []*protocol.Transaction{{ID: "x"}}
	if err := replay.ReplayStored(bad); err == nil {
		t.Error("replay accepted a block without validation metadata")
	}
}

func TestCommitterReportsPoisonedBlock(t *testing.T) {
	state, _ := statedb.New(statedb.Options{})
	chain, _ := ledger.NewChain(nil)
	errs := make(chan error, 1)
	c := New(Config{
		Name: "peerX", State: state, Chain: chain,
		OnError: func(err error) { errs <- err },
	})
	c.Start()
	// A block whose data hash does not cover its transactions cannot append.
	poisoned := &ledger.Block{
		Header:       ledger.Header{Number: 1, DataHash: ledger.DataHash(nil)},
		Transactions: []*protocol.Transaction{{ID: "x"}},
	}
	c.Deliver(poisoned)
	c.Close()
	select {
	case err := <-errs:
		if err == nil {
			t.Fatal("nil error")
		}
	default:
		t.Fatal("poisoned block did not surface an error")
	}
	if !c.Failed() {
		t.Error("committer not marked failed")
	}
}
