package core

import (
	"fmt"
	"sort"

	"fabricsharp/internal/intern"
	"fabricsharp/internal/metrics"
	"fabricsharp/internal/protocol"
	"fabricsharp/internal/seqno"
)

// Options configures a Manager. The zero value is usable; unset fields get
// the paper's defaults.
type Options struct {
	// MaxSpan is the maximum block span of a transaction (Section 4.6);
	// snapshots at or below nextBlock - MaxSpan are aborted as stale.
	// Default 10 (the paper's fixed setting).
	MaxSpan uint64
	// BloomBits and BloomHashes size every reachability filter.
	// Defaults: 1<<14 bits, 4 hashes.
	BloomBits   uint64
	BloomHashes int
	// RelayBlocks is the reachability-filter relay period in blocks
	// (Section 4.4): filters are rebuilt from the explicit edges every
	// RelayBlocks formations, bounding their false-positive rate.
	// Default 2*MaxSpan.
	RelayBlocks uint64
	// CompactEvery triggers deterministic epoch compaction of the intern
	// table (and every KeyID-indexed structure) after each sealed block
	// whose number is a multiple of it: keys no longer referenced by
	// retained state — CW/CR entries above the Section 4.6 horizon, pending
	// PW/PR writers/readers, live graph nodes — are dropped and the
	// survivors re-assigned dense KeyIDs in old-ID order. Block numbers are
	// a pure function of the consensus stream, so every replica compacts at
	// the same position and produces a bit-identical remapping. 0 (the
	// default) disables compaction: tables stay append-only, the pre-PR-4
	// behavior, appropriate for bounded key universes.
	CompactEvery uint64
	// Keys is the record-key intern table every index shares. Defaults to a
	// fresh table; pass one explicitly when wiring KVIndex-backed CW/CR
	// (they must resolve the same KeyIDs the Manager assigns).
	Keys *intern.Table
	// CW and CR supply the committed write/read indices. Defaults to fresh
	// in-memory indices; pass KVIndex-backed ones for persistence.
	CW, CR VersionIndex
}

func (o Options) withDefaults() Options {
	if o.MaxSpan == 0 {
		o.MaxSpan = 10
	}
	if o.BloomBits == 0 {
		o.BloomBits = 1 << 14
	}
	if o.BloomHashes == 0 {
		o.BloomHashes = 4
	}
	if o.RelayBlocks == 0 {
		o.RelayBlocks = 2 * o.MaxSpan
	}
	if o.Keys == nil {
		o.Keys = intern.NewTable()
	}
	if o.CW == nil {
		o.CW = NewMemIndex()
	}
	if o.CR == nil {
		o.CR = NewMemIndex()
	}
	return o
}

// Stats aggregates the measurements the evaluation reports: abort taxonomy,
// reachability traversal hops and block spans (Figure 13), the arrival
// processing breakdown (Figure 12, right) and the reordering latency
// breakdown (Figure 11, right).
type Stats struct {
	Arrivals       uint64
	Accepted       uint64
	AbortCycle     uint64
	AbortStale     uint64
	AbortDuplicate uint64

	Formations   uint64
	Committed    uint64
	PrunedNodes  uint64
	MaxGraphSize int

	// Compactions counts intern-table epoch compactions; CompactedKeys the
	// total KeyIDs dropped by them (the memory a churn workload reclaims).
	Compactions   uint64
	CompactedKeys uint64

	Hops      uint64 // nodes traversed by reachability updates
	SpanSum   uint64 // sum of committed transactions' block spans
	SpanCount uint64

	// Arrival-time breakdown (Figure 12): conflict identification,
	// graph/reachability update, pending-index recording.
	IdentifyConflictNS int64
	UpdateGraphNS      int64
	IndexRecordNS      int64

	// Formation-time breakdown (Figure 11): commit-order computation,
	// ww restoration, persisting to the committed indices, graph pruning,
	// and (when enabled) epoch compaction.
	ComputeOrderNS int64
	RestoreWWNS    int64
	PersistNS      int64
	PruneNS        int64
	CompactNS      int64
}

// MeanSpan returns the average block span of committed transactions.
func (s Stats) MeanSpan() float64 {
	if s.SpanCount == 0 {
		return 0
	}
	return float64(s.SpanSum) / float64(s.SpanCount)
}

// MeanHops returns the average reachability-update traversal per arrival.
func (s Stats) MeanHops() float64 {
	if s.Arrivals == 0 {
		return 0
	}
	return float64(s.Hops) / float64(s.Arrivals)
}

// Manager is the fine-grained concurrency control of Section 3.4, replicated
// inside every orderer. It is single-goroutine by design — the consensus
// stream is already serialized when it reaches the reordering step — and the
// caller provides that serialization.
type Manager struct {
	opts Options
	g    *graph
	keys *intern.Table
	cw   VersionIndex
	cr   VersionIndex
	// Pending transaction set P with its PW / PR key indices: per-KeyID
	// slices of pending writers/readers (slice indexing, no string hashing).
	pending []*txNode
	pw      [][]*txNode
	pr      [][]*txNode
	// nextBlock is M, the number of the next block to be committed.
	nextBlock uint64
	stats     Stats

	// Arrival/formation scratch, reused to keep the hot path allocation-
	// free: interned key buffers, the pred/succ working sets of Algorithm 2,
	// an index-query buffer, and the formation's contended-key collector.
	rbuf, wbuf []intern.Key
	predSet    map[*txNode]struct{}
	succSet    map[*txNode]struct{}
	idbuf      []TxID
	orderBuf   []*txNode
	wwKeys     []intern.Key
	wwGroups   [][]*txNode
	keyStamp   []uint64
	keyEpoch   uint64
}

// NewManager creates a Manager whose first formed block is number 1
// (block 0 being genesis).
func NewManager(opts Options) *Manager {
	opts = opts.withDefaults()
	return &Manager{
		opts:      opts,
		g:         newGraph(opts.BloomBits, opts.BloomHashes),
		keys:      opts.Keys,
		cw:        opts.CW,
		cr:        opts.CR,
		pending:   nil,
		nextBlock: 1,
		predSet:   make(map[*txNode]struct{}),
		succSet:   make(map[*txNode]struct{}),
	}
}

// Keys exposes the Manager's intern table — wire it into NewKVIndex when
// backing CW/CR with a kvstore.
func (m *Manager) Keys() *intern.Table { return m.keys }

// NextBlock returns M, the number of the block the next formation will seal.
func (m *Manager) NextBlock() uint64 { return m.nextBlock }

// PendingCount returns |P|.
func (m *Manager) PendingCount() int { return len(m.pending) }

// GraphSize returns the number of live nodes in G.
func (m *Manager) GraphSize() int { return m.g.size() }

// Stats returns a snapshot of the accumulated statistics.
func (m *Manager) Stats() Stats { return m.stats }

// horizon returns H = M - max_span, and whether a horizon exists yet.
func (m *Manager) horizon() (uint64, bool) {
	if m.nextBlock <= m.opts.MaxSpan {
		return 0, false
	}
	return m.nextBlock - m.opts.MaxSpan, true
}

// growKeyIndexed extends the per-KeyID pending indices (and the formation
// stamp array) to cover every key the table has issued.
func (m *Manager) growKeyIndexed() {
	n := m.keys.Len()
	for len(m.pw) < n {
		m.pw = append(m.pw, nil)
	}
	for len(m.pr) < n {
		m.pr = append(m.pr, nil)
	}
	for len(m.keyStamp) < n {
		m.keyStamp = append(m.keyStamp, 0)
	}
}

// OnArrival is Algorithm 2: it runs when the consensus hands the orderer a
// transaction, decides reorderability, and either admits the transaction to
// the pending set or drops it. The returned code is protocol.Valid on
// admission or one of the early-abort codes.
//
// snapshotBlock is the block the transaction simulated against (Algorithm 1)
// and must be below NextBlock. readKeys and writeKeys must each be
// duplicate-free (protocol.RWSet.ReadKeys/WriteKeys guarantee this).
func (m *Manager) OnArrival(id TxID, snapshotBlock uint64, readKeys, writeKeys []string) (protocol.ValidationCode, error) {
	if snapshotBlock >= m.nextBlock {
		// Contract violation, not an arrival: counting it would skew every
		// per-arrival denominator (MeanHops, the abort taxonomy) by calls
		// that never entered Algorithm 2.
		return 0, fmt.Errorf("core: transaction %s simulated against future block %d (next block %d)",
			id, snapshotBlock, m.nextBlock)
	}
	m.stats.Arrivals++
	if _, dup := m.g.nodes[id]; dup {
		m.stats.AbortDuplicate++
		return protocol.AbortDuplicate, nil
	}
	if h, ok := m.horizon(); ok && snapshotBlock <= h {
		m.stats.AbortStale++
		return protocol.AbortStaleSnapshot, nil
	}
	startTS := seqno.Snapshot(snapshotBlock)

	// Intern the key sets once; everything downstream is KeyID-based.
	m.rbuf = m.keys.InternAll(m.rbuf[:0], readKeys)
	m.wbuf = m.keys.InternAll(m.wbuf[:0], writeKeys)
	m.growKeyIndexed()

	// Phase 1 (Figure 12: "Identify conflict"): resolve the dependency sets
	// of Section 4.3 — everything except c-ww among pending transactions.
	// The working sets are reused scratch; the deferred clear covers every
	// exit path (including index errors), so a failed arrival can never
	// leak stale nodes into the next one's analysis.
	t0 := metrics.StartWatch()
	pred, succ := m.predSet, m.succSet
	defer func() {
		clear(pred)
		clear(succ)
	}()
	addTo := func(set map[*txNode]struct{}, txid TxID) {
		if n, ok := m.g.lookup(txid); ok {
			set[n] = struct{}{}
		}
	}
	var err error
	for _, r := range m.rbuf {
		// anti-rw: committed writers at or after the snapshot, plus pending
		// writers. These must serialize after the new transaction.
		if m.idbuf, err = m.cw.After(m.idbuf[:0], r, startTS); err != nil {
			return 0, err
		}
		for _, txid := range m.idbuf {
			addTo(succ, txid)
		}
		for _, n := range m.pw[r] {
			succ[n] = struct{}{}
		}
		// n-wr: the writer of the version actually read.
		if txid, ok, err := m.cw.Before(r, startTS); err != nil {
			return 0, err
		} else if ok {
			addTo(pred, txid)
		}
	}
	for _, w := range m.wbuf {
		// rw: committed and pending readers of the keys we overwrite.
		if m.idbuf, err = m.cr.All(m.idbuf[:0], w); err != nil {
			return 0, err
		}
		for _, txid := range m.idbuf {
			addTo(pred, txid)
		}
		for _, n := range m.pr[w] {
			pred[n] = struct{}{}
		}
		// ww against the last committed writer.
		if txid, ok, err := m.cw.Last(w); err != nil {
			return 0, err
		} else if ok {
			addTo(pred, txid)
		}
	}
	cyclic := hasCycle(pred, succ)
	m.stats.IdentifyConflictNS += t0.ElapsedNS()

	if cyclic {
		m.stats.AbortCycle++
		return protocol.AbortCycle, nil
	}

	// Phase 2 (Figure 12: "Update graph"): Algorithm 4.
	t1 := metrics.StartWatch()
	node := m.g.newNode(id, startTS, m.rbuf, m.wbuf)
	hops := m.g.insert(node, pred, succ, m.nextBlock)
	m.stats.Hops += uint64(hops)
	m.stats.UpdateGraphNS += t1.ElapsedNS()

	// Phase 3 (Figure 12: "Index record"): register in P, PW, PR.
	t2 := metrics.StartWatch()
	m.pending = append(m.pending, node)
	for _, r := range node.readKeys {
		m.pr[r] = append(m.pr[r], node)
	}
	for _, w := range node.writeKeys {
		m.pw[w] = append(m.pw[w], node)
	}
	m.stats.IndexRecordNS += t2.ElapsedNS()

	m.stats.Accepted++
	if n := m.g.size(); n > m.stats.MaxGraphSize {
		m.stats.MaxGraphSize = n
	}
	return protocol.Valid, nil
}

// OnBlockFormation is Algorithm 3: it fixes the commit order of the pending
// transactions (a topological order of G restricted to P), restores ww
// dependencies (Algorithm 5), records the commitments in CW/CR, prunes, and
// empties P. It returns the ordered transaction IDs and the sealed block
// number. With no pending transactions it returns (nil, next block) without
// consuming a block number.
func (m *Manager) OnBlockFormation() ([]TxID, uint64, error) {
	if len(m.pending) == 0 {
		return nil, m.nextBlock, nil
	}
	block := m.nextBlock
	m.stats.Formations++

	// Compute the commit order (Figure 11: "Compute order").
	t0 := metrics.StartWatch()
	topo := m.g.topoOrder()
	order := m.orderBuf[:0]
	for _, n := range topo {
		if !n.committed {
			n.pos = len(order)
			order = append(order, n)
		}
	}
	for i, n := range order {
		n.endTS = seqno.Commit(block, uint32(i+1))
		n.committed = true
		span := block - n.startTS.SnapshotBlock()
		m.stats.SpanSum += span
		m.stats.SpanCount++
	}
	m.stats.ComputeOrderNS += t0.ElapsedNS()

	// Restore ww dependencies (Figure 11: "Restore ww"): collect the keys
	// with two or more pending writers, order them deterministically by
	// record-key string (the same order the pre-interning implementation
	// used, so decisions are bit-identical), and hand the position-sorted
	// writer groups to the graph.
	t1 := metrics.StartWatch()
	m.keyEpoch++
	wwKeys := m.wwKeys[:0]
	for _, n := range order {
		for _, w := range n.writeKeys {
			if m.keyStamp[w] != m.keyEpoch && len(m.pw[w]) >= 2 {
				m.keyStamp[w] = m.keyEpoch
				wwKeys = append(wwKeys, w)
			}
		}
	}
	sortKeysByString(m.keys, wwKeys)
	groups := m.wwGroups[:0]
	for _, w := range wwKeys {
		sortWriters(m.pw[w])
		groups = append(groups, m.pw[w])
	}
	m.g.restoreWW(groups)
	m.wwKeys = wwKeys
	m.wwGroups = groups
	m.stats.RestoreWWNS += t1.ElapsedNS()

	// Persist commitments to the CW/CR storages (Figure 11: "Persist to
	// storage") and clear the pending indices.
	t2 := metrics.StartWatch()
	ids := make([]TxID, len(order))
	for i, n := range order {
		ids[i] = n.id
		for _, w := range n.writeKeys {
			if err := m.cw.Put(w, n.endTS, n.id); err != nil {
				return nil, 0, err
			}
		}
		for _, r := range n.readKeys {
			if err := m.cr.Put(r, n.endTS, n.id); err != nil {
				return nil, 0, err
			}
		}
	}
	for _, n := range order {
		for _, w := range n.writeKeys {
			m.pw[w] = m.pw[w][:0]
		}
		for _, r := range n.readKeys {
			m.pr[r] = m.pr[r][:0]
		}
	}
	m.pending = m.pending[:0]
	m.g.bumpCommitted(order, block)
	m.orderBuf = order
	m.stats.PersistNS += t2.ElapsedNS()

	// Prune G and the indices (Figure 11: "Prune G"), then advance M.
	t3 := metrics.StartWatch()
	m.nextBlock++
	if h, ok := m.horizon(); ok {
		m.stats.PrunedNodes += uint64(m.g.prune(h))
		if err := m.cw.PruneBefore(h); err != nil {
			return nil, 0, err
		}
		if err := m.cr.PruneBefore(h); err != nil {
			return nil, 0, err
		}
	}
	if block%m.opts.RelayBlocks == 0 {
		m.g.rebuildReachability()
	}
	m.stats.PruneNS += t3.ElapsedNS()

	// Epoch compaction (PR 4): after index pruning, at a block boundary
	// every replica reaches identically, rebuild the intern table around the
	// keys still referenced by retained state.
	if m.opts.CompactEvery > 0 && block%m.opts.CompactEvery == 0 {
		t4 := metrics.StartWatch()
		if err := m.compact(); err != nil {
			return nil, 0, err
		}
		m.stats.CompactNS += t4.ElapsedNS()
	}

	m.stats.Committed += uint64(len(ids))
	return ids, block, nil
}

// compact is the deterministic epoch compaction: it collects the liveness
// set — every KeyID still referenced by a retained CW/CR entry, a pending
// PW/PR slot, or a live graph node's key set — rebuilds the intern table
// with dense KeyIDs re-assigned in old-ID order, and remaps every
// KeyID-indexed structure. The liveness set and the old-ID iteration order
// are both pure functions of the consensus stream, so replicas starting
// from the same stream produce bit-identical post-compaction state; and
// because a dropped key by construction has no retained entries anywhere,
// every index query on it answers "empty" exactly as before — compaction
// cannot change scheduling decisions (asserted by the equivalence tests).
func (m *Manager) compact() error {
	// Committed-but-unpruned nodes keep their key sets (only pending nodes'
	// sets are read again, but a stale KeyID anywhere is a latent
	// corruption), so every live node pins its keys.
	markNodes := func(live []bool) {
		for _, n := range m.g.nodes {
			for _, k := range n.readKeys {
				live[k] = true
			}
			for _, k := range n.writeKeys {
				live[k] = true
			}
		}
	}
	pw, pr, remap, err := CompactKeyState(m.keys, m.cw, m.cr, m.pw, m.pr, markNodes)
	if err != nil {
		return err
	}
	m.pw, m.pr = pw, pr
	newLen := m.keys.Len()
	m.stats.Compactions++
	m.stats.CompactedKeys += uint64(len(remap) - newLen)
	// Stamps restart at zero: keyEpoch only grows and is never reset, so a
	// zero stamp can never collide with a live epoch.
	m.keyStamp = make([]uint64, newLen)
	//sharp:orderinvariant per-node in-place KeyID remap; every node is rewritten independently of visit order
	for _, n := range m.g.nodes {
		intern.RemapInPlace(n.readKeys, remap)
		intern.RemapInPlace(n.writeKeys, remap)
	}
	// Scratch that carried pre-compaction KeyIDs must not leak them, and
	// wwGroups' writer-slice aliases must not pin the retired slot arrays.
	m.rbuf, m.wbuf, m.wwKeys = m.rbuf[:0], m.wbuf[:0], m.wwKeys[:0]
	for i := range m.wwGroups {
		m.wwGroups[i] = nil
	}
	m.wwGroups = m.wwGroups[:0]
	return nil
}

// FastForward moves a fresh manager's block cursor past an externally
// stored chain of `height` blocks (restart from persistence). It is only
// legal before any arrival: the restart contract is clean-shutdown, every
// pre-restart transaction is committed and beyond conflict range of any
// future snapshot (which will be >= height), so the empty graph and indices
// are sound.
func (m *Manager) FastForward(height uint64) error {
	if m.stats.Arrivals > 0 || len(m.pending) > 0 || m.nextBlock != 1 {
		return fmt.Errorf("core: cannot fast-forward a manager with history")
	}
	m.nextBlock = height + 1
	return nil
}

// MinRetainedSnapshot returns the oldest snapshot block a newly arriving
// transaction may still read from; the state database can prune history
// below it (Section 4.2).
func (m *Manager) MinRetainedSnapshot() uint64 {
	if h, ok := m.horizon(); ok {
		return h + 1
	}
	return 0
}

// sortKeysByString orders KeyIDs by their record-key strings — the
// deterministic iteration order Algorithm 5's edge restoration was specified
// with (sorted map keys before interning).
func sortKeysByString(tbl *intern.Table, keys []intern.Key) {
	if len(keys) < 2 {
		return
	}
	sort.Slice(keys, func(i, j int) bool { return tbl.Lookup(keys[i]) < tbl.Lookup(keys[j]) })
}
