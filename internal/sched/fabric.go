package sched

import (
	"fmt"

	"fabricsharp/internal/protocol"
)

// Fabric is the vanilla baseline: the orderer batches transactions in FIFO
// consensus order and the validation phase aborts every transaction whose
// readset went stale (Strong Serializability by Theorem 1 — and the
// over-aborting the paper sets out to eliminate).
type Fabric struct {
	pending   []*protocol.Transaction
	nextBlock uint64
	timing    Timing
}

// NewFabric returns the vanilla scheduler.
func NewFabric() *Fabric { return &Fabric{nextBlock: 1} }

// System implements Scheduler.
func (f *Fabric) System() System { return SystemFabric }

// OnArrival implements Scheduler: everything is admitted.
func (f *Fabric) OnArrival(tx *protocol.Transaction) (protocol.ValidationCode, error) {
	w := startWatch()
	f.pending = append(f.pending, tx)
	f.timing.Arrivals++
	f.timing.ArrivalNS += w.elapsedNS()
	return protocol.Valid, nil
}

// OnBlockFormation implements Scheduler: FIFO, no reordering.
func (f *Fabric) OnBlockFormation() (FormationResult, error) {
	if len(f.pending) == 0 {
		return FormationResult{Block: f.nextBlock}, nil
	}
	w := startWatch()
	res := FormationResult{Block: f.nextBlock, Ordered: f.pending}
	f.pending = nil
	f.nextBlock++
	f.timing.Formations++
	f.timing.FormationNS += w.elapsedNS()
	return res, nil
}

// OnBlockCommitted implements Scheduler (no feedback needed).
func (f *Fabric) OnBlockCommitted(uint64, []*protocol.Transaction, []protocol.ValidationCode) {}

// NeedsMVCCValidation implements Scheduler.
func (f *Fabric) NeedsMVCCValidation() bool { return true }

// PendingCount implements Scheduler.
func (f *Fabric) PendingCount() int { return len(f.pending) }

// ResidentKeys implements Scheduler: vanilla Fabric keeps no key state.
func (f *Fabric) ResidentKeys() int { return 0 }

// FastForward implements Scheduler.
func (f *Fabric) FastForward(height uint64) error {
	if f.timing.Arrivals > 0 {
		return fmt.Errorf("sched: cannot fast-forward a scheduler with history")
	}
	f.nextBlock = height + 1
	return nil
}

// Timing implements Scheduler.
func (f *Fabric) Timing() Timing { return f.timing }
