package trace

import (
	"fmt"
	"sync"
	"testing"
)

func TestRingRecordAndSnapshot(t *testing.T) {
	r := NewRing(16)
	if r.Cap() != 16 {
		t.Fatalf("cap = %d, want 16", r.Cap())
	}
	r.RecordAt("tx-1", StageSubmit, 0, 100)
	r.RecordAt("tx-1", StageSeal, 7, 200)
	r.RecordAt("tx-2", StageCommit, 7, 300)
	evs := r.Snapshot()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	want := []Event{
		{TxID: "tx-1", Stage: StageSubmit, Block: 0, WallNS: 100, Seq: 1},
		{TxID: "tx-1", Stage: StageSeal, Block: 7, WallNS: 200, Seq: 2},
		{TxID: "tx-2", Stage: StageCommit, Block: 7, WallNS: 300, Seq: 3},
	}
	for i, ev := range evs {
		if ev != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, ev, want[i])
		}
	}
	if r.Recorded() != 3 {
		t.Errorf("Recorded = %d, want 3", r.Recorded())
	}
}

func TestRingRoundsCapacityUp(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, DefaultRingSize}, {-1, DefaultRingSize}, {1, 1}, {3, 4}, {64, 64}, {65, 128},
	} {
		if got := NewRing(tc.in).Cap(); got != tc.want {
			t.Errorf("NewRing(%d).Cap() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestRingWraparoundOverwritesOldest(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 20; i++ {
		r.RecordAt(fmt.Sprintf("tx-%d", i), StageOrder, uint64(i), int64(i))
	}
	evs := r.Snapshot()
	if len(evs) != 8 {
		t.Fatalf("got %d events, want the 8 newest", len(evs))
	}
	// The surviving window is exactly records 12..19, oldest first.
	for i, ev := range evs {
		wantIdx := 12 + i
		if ev.TxID != fmt.Sprintf("tx-%d", wantIdx) || ev.Seq != uint64(wantIdx+1) {
			t.Errorf("event %d = %+v, want tx-%d seq %d", i, ev, wantIdx, wantIdx+1)
		}
	}
	if r.Recorded() != 20 {
		t.Errorf("Recorded = %d, want 20", r.Recorded())
	}
}

func TestRingTruncatesLongTxIDs(t *testing.T) {
	r := NewRing(4)
	long := make([]byte, 2*MaxTxIDLen)
	for i := range long {
		long[i] = byte('a' + i%26)
	}
	r.RecordAt(string(long), StageSubmit, 0, 1)
	evs := r.Snapshot()
	if len(evs) != 1 {
		t.Fatalf("got %d events, want 1", len(evs))
	}
	if evs[0].TxID != string(long[:MaxTxIDLen]) {
		t.Errorf("TxID = %q, want the %d-byte prefix", evs[0].TxID, MaxTxIDLen)
	}
}

// TestRingConcurrentStress hammers a small ring from many writers while a
// drainer loops, asserting under -race that every drained event is
// internally consistent: the TxID, stage, block, and timestamp of one
// logical record, never a torn mix of two.
func TestRingConcurrentStress(t *testing.T) {
	const writers = 8
	const perWriter = 5000
	r := NewRing(64) // small: force constant wraparound contention
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				// Every field derives from (w, i), so a drain can verify
				// that no slot mixes two records.
				id := fmt.Sprintf("w%02d-i%06d", w, i)
				stage := Stage(1 + (i % NumStages))
				block := uint64(w)<<32 | uint64(i)
				wall := int64(block) + 1
				r.RecordAt(id, stage, block, wall)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	checked := 0
	for {
		evs := r.Snapshot()
		for _, ev := range evs {
			verifyStressEvent(t, ev)
			checked++
		}
		select {
		case <-done:
			for _, ev := range r.Snapshot() {
				verifyStressEvent(t, ev)
				checked++
			}
			if checked == 0 {
				t.Fatal("drainer never observed an event")
			}
			return
		default:
		}
	}
}

func verifyStressEvent(t *testing.T, ev Event) {
	t.Helper()
	var w, i int
	if n, err := fmt.Sscanf(ev.TxID, "w%02d-i%06d", &w, &i); n != 2 || err != nil {
		t.Fatalf("torn TxID %q", ev.TxID)
	}
	if wantBlock := uint64(w)<<32 | uint64(i); ev.Block != wantBlock {
		t.Fatalf("event %q carries block %d, want %d (torn slot)", ev.TxID, ev.Block, wantBlock)
	}
	if ev.WallNS != int64(ev.Block)+1 {
		t.Fatalf("event %q carries wall %d, want %d (torn slot)", ev.TxID, ev.WallNS, int64(ev.Block)+1)
	}
	if wantStage := Stage(1 + (i % NumStages)); ev.Stage != wantStage {
		t.Fatalf("event %q carries stage %v, want %v (torn slot)", ev.TxID, ev.Stage, wantStage)
	}
}

// TestRingDrainWhileWritingConsistentPrefix drains mid-stream and asserts
// the snapshot is a consistent window: per writer, the observed indices are
// each valid, and the snapshot is ordered by ticket.
func TestRingDrainWhileWritingConsistentPrefix(t *testing.T) {
	r := NewRing(128)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			r.RecordAt(fmt.Sprintf("w00-i%06d", i%1000000), Stage(1+(i%NumStages)), uint64(i%1000000), int64(i%1000000)+1)
		}
	}()
	for drain := 0; drain < 50; drain++ {
		evs := r.Snapshot()
		last := uint64(0)
		for _, ev := range evs {
			if ev.Seq <= last {
				t.Fatalf("snapshot out of ticket order: %d after %d", ev.Seq, last)
			}
			last = ev.Seq
		}
	}
	close(stop)
	wg.Wait()
}

// TestRecordPathZeroAllocs is the hot-path contract: recording must not
// allocate, or an always-on tracer would pressure the GC under load.
func TestRecordPathZeroAllocs(t *testing.T) {
	r := NewRing(1 << 10)
	id := "load3-000042"
	allocs := testing.AllocsPerRun(1000, func() {
		r.RecordAt(id, StageCommit, 12, 34)
	})
	if allocs != 0 {
		t.Fatalf("RecordAt allocates %.1f objects/op, want 0", allocs)
	}
	tr := New("peer0", "peer", 1<<10)
	allocs = testing.AllocsPerRun(1000, func() {
		tr.Record(id, StageCommit, 12)
	})
	if allocs != 0 {
		t.Fatalf("Tracer.Record allocates %.1f objects/op, want 0", allocs)
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Record("tx", StageSubmit, 0) // must not panic
	if d := tr.Dump(); d.Recorded != 0 || len(d.Events) != 0 {
		t.Fatalf("nil dump = %+v, want empty", d)
	}
}

func BenchmarkRecord(b *testing.B) {
	r := NewRing(1 << 17)
	id := "load7-123456"
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r.RecordAt(id, StageValidate, 99, 1234567890)
		}
	})
}
