package identity

import (
	"bytes"
	"testing"
)

// TestDeterministicDerivation pins the dev-MSP property the multi-process
// mode rests on: the same (name, role) always derives the same key pair, so
// independent processes agree on every node's public key, and signatures
// made in one process verify in another.
func TestDeterministicDerivation(t *testing.T) {
	a := Deterministic("peer0", RolePeer)
	b := Deterministic("peer0", RolePeer)
	if !bytes.Equal(a.Public(), b.Public()) {
		t.Fatal("same name+role derived different keys")
	}
	if bytes.Equal(a.Public(), Deterministic("peer1", RolePeer).Public()) {
		t.Fatal("different names derived the same key")
	}
	if bytes.Equal(a.Public(), Deterministic("peer0", RoleOrderer).Public()) {
		t.Fatal("different roles derived the same key")
	}

	// Cross-"process" verification: a service that only registered the
	// public half verifies a signature produced by the private half.
	svc := NewService()
	if err := svc.Register("peer0", RolePeer, a.Public()); err != nil {
		t.Fatal(err)
	}
	msg := []byte("endorse me")
	if !svc.Verify("peer0", msg, b.Sign(msg)) {
		t.Fatal("deterministic signature did not verify across services")
	}
}

func TestRegisterIdempotentAndConflicting(t *testing.T) {
	svc := NewService()
	id := Deterministic("peer0", RolePeer)
	if err := svc.Register("peer0", RolePeer, id.Public()); err != nil {
		t.Fatal(err)
	}
	// Same key, same role: a no-op.
	if err := svc.Register("peer0", RolePeer, id.Public()); err != nil {
		t.Fatalf("idempotent re-registration rejected: %v", err)
	}
	// Conflicting credentials must be refused.
	other := Deterministic("other", RolePeer)
	if err := svc.Register("peer0", RolePeer, other.Public()); err == nil {
		t.Fatal("conflicting re-registration accepted")
	}
	if err := svc.Register("peer0", RoleOrderer, id.Public()); err == nil {
		t.Fatal("role change on re-registration accepted")
	}
	// Register also collides with Enroll-created members.
	if _, err := svc.Enroll("peer0", RolePeer); err == nil {
		t.Fatal("enroll over a registered member accepted")
	}
}
