package node

import (
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"fabricsharp/internal/sched"
)

// flakyProxy fronts a real peer with a listener that kills the first
// failConns accepted connections — the shape a node mid-restart presents
// (the socket answers, the call dies) — then forwards transparently.
func flakyProxy(t *testing.T, upstream string, failConns int32) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	var accepted atomic.Int32
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			if accepted.Add(1) <= failConns {
				_ = c.Close()
				continue
			}
			up, err := net.Dial("tcp", upstream)
			if err != nil {
				_ = c.Close()
				continue
			}
			go func() { _, _ = io.Copy(up, c); _ = up.Close() }()
			go func() { _, _ = io.Copy(c, up); _ = c.Close() }()
		}
	}()
	return ln.Addr().String()
}

// TestStatusAtRetryToleratesRestart pins the satellite bugfix: status and
// check probes must survive a node whose connections die mid-handshake for
// a bounded window, and still fail cleanly when the node never recovers.
func TestStatusAtRetryToleratesRestart(t *testing.T) {
	_, peers := bootCluster(t, sched.SystemSharp, 1)
	upstream := peers[0].Addr()
	cases := []struct {
		name      string
		failConns int32
		deadline  time.Duration
		wantOK    bool
	}{
		{"healthy", 0, 5 * time.Second, true},
		{"one dead conn", 1, 5 * time.Second, true},
		{"restart window", 3, 10 * time.Second, true},
		{"never recovers", 1 << 30, 300 * time.Millisecond, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			addr := flakyProxy(t, upstream, c.failConns)
			st, err := StatusAtRetry(addr, time.Now().Add(c.deadline))
			if c.wantOK {
				if err != nil {
					t.Fatalf("probe through flaky proxy failed: %v", err)
				}
				if st.Name != "peer0" || st.Role != "peer" {
					t.Fatalf("probe answered as %s/%s", st.Name, st.Role)
				}
				return
			}
			if err == nil {
				t.Fatal("probe of a dead node reported success")
			}
		})
	}
}
