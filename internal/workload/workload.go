// Package workload implements the benchmark drivers of Section 5.2: the
// modified Smallbank workload of the Fabric++ evaluation (4 reads + 4 writes
// over 10k accounts with hot-access ratios), the original Smallbank mix and
// Create Account workloads of the FastFabric experiments (Figure 15), and
// the no-op / single-modification micro-workloads of Figure 1 — plus the
// zipfian generator that skews account selection.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"fabricsharp/internal/chaincode"
	"fabricsharp/internal/protocol"
	"fabricsharp/internal/seqno"
	"fabricsharp/internal/statedb"
)

// Op is one contract invocation a client submits.
type Op struct {
	Contract string
	Function string
	Args     []string
}

// Generator produces a stream of operations. Implementations are
// deterministic given their seed.
type Generator interface {
	// Name identifies the workload in reports.
	Name() string
	// Next returns the next operation.
	Next() Op
	// Seed populates the genesis state the workload expects.
	Seed(db *statedb.DB) error
}

// ---------------------------------------------------------------------------
// Zipfian generator
// ---------------------------------------------------------------------------

// Zipf samples [0, n) with P(i) ∝ 1/(i+1)^theta via an exact inverse-CDF
// table. theta = 0 degenerates to uniform; unlike the YCSB closed form it
// stays exact for theta >= 1 (Figure 1 sweeps theta up to 1.2).
type Zipf struct {
	rng *rand.Rand
	cdf []float64
}

// NewZipf builds the sampler.
func NewZipf(rng *rand.Rand, n int, theta float64) *Zipf {
	if n <= 0 {
		panic("workload: zipf needs n > 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), theta)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{rng: rng, cdf: cdf}
}

// Next samples one value.
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(z.cdf) {
		lo = len(z.cdf) - 1
	}
	return lo
}

// GenesisVersion is the version every genesis write carries: position 1 of
// block 0, below any transaction the pipeline will ever seal. Endorsements
// over genesis keys therefore read this version, and every replica — peer
// state databases and orderer shadow states alike — must install genesis at
// exactly this version or MVCC verdicts diverge between them.
func GenesisVersion() seqno.Seq { return seqno.Commit(0, 1) }

// SeedGenesis installs writes as the block-0 genesis state. Every scenario
// genesis — in-process simulator runs, loopback fabric networks, and the
// process-per-node peers of a wire cluster — goes through this one helper so
// all replicas seed bit-identically. An empty write set is a no-op; seeding
// a database that already holds blocks is an error (ApplyBlock enforces the
// ordering).
func SeedGenesis(db *statedb.DB, writes []protocol.WriteItem) error {
	if len(writes) == 0 {
		return nil
	}
	return db.ApplyBlock(0, []statedb.BlockWrites{{Pos: GenesisVersion().Pos, Writes: writes}})
}

// AccountGenesis builds the genesis write set shared by the single-mod and
// modified-Smallbank workloads: n accounts with balance 1000 each.
func AccountGenesis(n int) []protocol.WriteItem {
	writes := make([]protocol.WriteItem, 0, n)
	for i := 0; i < n; i++ {
		writes = append(writes, protocol.WriteItem{
			Key:   chaincode.AccountKey(fmt.Sprint(i)),
			Value: []byte("1000"),
		})
	}
	return writes
}

// SmallbankGenesis builds the original-Smallbank genesis write set: n
// accounts with checking and savings balances of 10000 each.
func SmallbankGenesis(n int) []protocol.WriteItem {
	writes := make([]protocol.WriteItem, 0, 2*n)
	for i := 0; i < n; i++ {
		id := fmt.Sprint(i)
		writes = append(writes,
			protocol.WriteItem{Key: chaincode.CheckingKey(id), Value: []byte("10000")},
			protocol.WriteItem{Key: chaincode.SavingsKey(id), Value: []byte("10000")},
		)
	}
	return writes
}

// ---------------------------------------------------------------------------
// Figure 1 micro-workloads
// ---------------------------------------------------------------------------

// NoOp issues transactions with no data access.
type NoOp struct{}

// Name implements Generator.
func (NoOp) Name() string { return "no-op" }

// Next implements Generator.
func (NoOp) Next() Op { return Op{Contract: "kv", Function: "noop"} }

// Seed implements Generator.
func (NoOp) Seed(*statedb.DB) error { return nil }

// SingleMod issues single read-modify-write transactions over Accounts keys
// with zipfian skew — Figure 1's "single modification transactions with
// varying skewness".
type SingleMod struct {
	Accounts int
	Theta    float64
	zipf     *Zipf
}

// NewSingleMod builds the workload.
func NewSingleMod(rng *rand.Rand, accounts int, theta float64) *SingleMod {
	return &SingleMod{Accounts: accounts, Theta: theta, zipf: NewZipf(rng, accounts, theta)}
}

// Name implements Generator.
func (s *SingleMod) Name() string { return fmt.Sprintf("single-mod(θ=%.1f)", s.Theta) }

// Next implements Generator.
func (s *SingleMod) Next() Op {
	acct := s.zipf.Next()
	return Op{Contract: "kv", Function: "rmw", Args: []string{chaincode.AccountKey(fmt.Sprint(acct)), "1"}}
}

// Seed implements Generator.
func (s *SingleMod) Seed(db *statedb.DB) error {
	return SeedGenesis(db, AccountGenesis(s.Accounts))
}

// ---------------------------------------------------------------------------
// Modified Smallbank (Fabric++ evaluation; Figures 10-14)
// ---------------------------------------------------------------------------

// ModifiedSmallbank issues the Fabric++ evaluation's transactions: each
// reads 4 accounts and writes 4 accounts out of Accounts (default 10k), of
// which HotFrac (default 1%) are hot. Each read targets a hot account with
// probability ReadHotRatio; each write with probability WriteHotRatio.
type ModifiedSmallbank struct {
	Accounts      int
	HotFrac       float64
	ReadHotRatio  float64
	WriteHotRatio float64
	rng           *rand.Rand
}

// NewModifiedSmallbank builds the workload over `accounts` accounts (0 means
// the paper's default of 10k, of which 1% are hot). It rejects parameter
// combinations under which pick could never terminate: each transaction
// needs 4 distinct accounts, so the pool — and, at the ratio extremes, the
// reachable sub-pool — must hold at least 4.
func NewModifiedSmallbank(rng *rand.Rand, accounts int, readHot, writeHot float64) (*ModifiedSmallbank, error) {
	if accounts == 0 {
		accounts = 10000
	}
	if accounts < 4 {
		return nil, fmt.Errorf("workload: modified smallbank picks 4 distinct accounts per transaction, got a pool of %d", accounts)
	}
	for _, r := range []float64{readHot, writeHot} {
		if r < 0 || r > 1 {
			return nil, fmt.Errorf("workload: hot-access ratio %v outside [0, 1]", r)
		}
	}
	m := &ModifiedSmallbank{
		Accounts:      accounts,
		HotFrac:       0.01,
		ReadHotRatio:  readHot,
		WriteHotRatio: writeHot,
		rng:           rng,
	}
	// At ratio 1 every draw is hot; at ratio 0 every draw is cold. The
	// corresponding sub-pool must still offer 4 distinct accounts or pick
	// would spin forever.
	hot := m.hotAccounts()
	if (readHot == 1 || writeHot == 1) && hot < 4 {
		return nil, fmt.Errorf("workload: hot ratio 1 with only %d hot account(s); need >= 4", hot)
	}
	if (readHot == 0 || writeHot == 0) && accounts-hot < 4 {
		return nil, fmt.Errorf("workload: hot ratio 0 with only %d cold account(s); need >= 4", accounts-hot)
	}
	return m, nil
}

// hotAccounts is the size of the hot sub-pool (at least 1).
func (m *ModifiedSmallbank) hotAccounts() int {
	hot := int(float64(m.Accounts) * m.HotFrac)
	if hot < 1 {
		hot = 1
	}
	return hot
}

// Name implements Generator.
func (m *ModifiedSmallbank) Name() string {
	return fmt.Sprintf("msmallbank(rh=%.0f%%,wh=%.0f%%)", 100*m.ReadHotRatio, 100*m.WriteHotRatio)
}

// pick returns 4 distinct accounts, each hot with probability hotRatio.
// NewModifiedSmallbank validated that the reachable pool holds at least 4
// accounts, so the loop terminates (with probability 1).
func (m *ModifiedSmallbank) pick(hotRatio float64) []string {
	hot := m.hotAccounts()
	seen := map[int]bool{}
	out := make([]string, 0, 4)
	for len(out) < 4 {
		var acct int
		if m.rng.Float64() < hotRatio {
			acct = m.rng.Intn(hot)
		} else {
			acct = hot + m.rng.Intn(m.Accounts-hot)
		}
		if !seen[acct] {
			seen[acct] = true
			out = append(out, fmt.Sprint(acct))
		}
	}
	return out
}

// Next implements Generator.
func (m *ModifiedSmallbank) Next() Op {
	args := append(m.pick(m.ReadHotRatio), m.pick(m.WriteHotRatio)...)
	return Op{Contract: "msmallbank", Function: "op", Args: args}
}

// Seed implements Generator.
func (m *ModifiedSmallbank) Seed(db *statedb.DB) error {
	return SeedGenesis(db, AccountGenesis(m.Accounts))
}

// ---------------------------------------------------------------------------
// Original Smallbank (FastFabric experiments; Figure 15)
// ---------------------------------------------------------------------------

// CreateAccount issues uniform, contention-free account creations (blind
// writes) — Figure 15's first workload.
type CreateAccount struct {
	next int
}

// Name implements Generator.
func (c *CreateAccount) Name() string { return "create-account" }

// Next implements Generator.
func (c *CreateAccount) Next() Op {
	c.next++
	return Op{
		Contract: "smallbank",
		Function: "create_account",
		Args:     []string{fmt.Sprintf("new%d", c.next), "1000", "1000"},
	}
}

// Seed implements Generator.
func (c *CreateAccount) Seed(*statedb.DB) error { return nil }

// MixedSmallbank issues Figure 15's mixed workload: 50% read-only queries,
// 30% single-account updates (deposit_checking, write_check,
// transact_savings), 20% two-account updates (send_payment, amalgamate),
// with zipfian account skew theta.
type MixedSmallbank struct {
	Accounts int
	Theta    float64
	rng      *rand.Rand
	zipf     *Zipf
}

// NewMixedSmallbank builds the workload over `accounts` accounts (0 means
// 10k). The two-account transactions draw distinct accounts, so a pool of
// one could never terminate Next; it is rejected here instead.
func NewMixedSmallbank(rng *rand.Rand, accounts int, theta float64) (*MixedSmallbank, error) {
	if accounts == 0 {
		accounts = 10000
	}
	if accounts < 2 {
		return nil, fmt.Errorf("workload: mixed smallbank draws distinct account pairs, got a pool of %d", accounts)
	}
	return &MixedSmallbank{Accounts: accounts, Theta: theta, rng: rng, zipf: NewZipf(rng, accounts, theta)}, nil
}

// Name implements Generator.
func (m *MixedSmallbank) Name() string { return fmt.Sprintf("mixed-smallbank(θ=%.2f)", m.Theta) }

// Next implements Generator.
func (m *MixedSmallbank) Next() Op {
	a := fmt.Sprint(m.zipf.Next())
	switch r := m.rng.Float64(); {
	case r < 0.50:
		return Op{Contract: "smallbank", Function: "query", Args: []string{a}}
	case r < 0.80:
		fn := []string{"deposit_checking", "write_check", "transact_savings"}[m.rng.Intn(3)]
		return Op{Contract: "smallbank", Function: fn, Args: []string{a, "5"}}
	default:
		b := fmt.Sprint(m.zipf.Next())
		for b == a {
			b = fmt.Sprint(m.zipf.Next())
		}
		if m.rng.Intn(2) == 0 {
			return Op{Contract: "smallbank", Function: "send_payment", Args: []string{a, b, "5"}}
		}
		return Op{Contract: "smallbank", Function: "amalgamate", Args: []string{a, b}}
	}
}

// Seed implements Generator.
func (m *MixedSmallbank) Seed(db *statedb.DB) error {
	return SeedGenesis(db, SmallbankGenesis(m.Accounts))
}
