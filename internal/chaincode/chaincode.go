// Package chaincode implements the smart-contract runtime of the execution
// phase: the stub API contracts program against, the read/write-set
// recording simulation harness, and the contracts used by the paper's
// evaluation (Smallbank, the modified Smallbank of the Fabric++ workload, a
// generic KV contract) plus a supply-chain contract for the examples.
package chaincode

import (
	"fmt"
	"sort"
	"strconv"

	"fabricsharp/internal/protocol"
	"fabricsharp/internal/seqno"
)

// StateReader resolves a simulation-time read. Implementations decide the
// read semantics: a block snapshot (FabricSharp's Algorithm 1), the latest
// committed state (Fabric++), or a lock-protected current state (vanilla
// Fabric). In the discrete-event simulator the call may also advance
// virtual time (the Read-Interval knob of Figure 14).
type StateReader interface {
	Read(key string) (value []byte, version seqno.Seq, found bool, err error)
}

// RangeReader extends StateReader with ordered range scans. Implementations
// return the live keys in [start, end) in lexical order. Readers that do
// not implement it make GetStateRange fail cleanly.
type RangeReader interface {
	StateReader
	ReadRange(start, end string) (keys []string, err error)
}

// Stub is the API surface a contract invocation sees.
type Stub interface {
	// Function returns the invoked function name.
	Function() string
	// Args returns the invocation arguments.
	Args() []string
	// GetState reads a key, recording the version dependency.
	GetState(key string) ([]byte, error)
	// PutState buffers a write of key.
	PutState(key string, value []byte) error
	// DelState buffers a deletion of key.
	DelState(key string) error
	// GetStateRange reads every live key in [start, end), recording each
	// returned entry in the readset (each read version is validated like a
	// point read; new keys appearing in the range are not detected —
	// Fabric's phantom-read caveat applies and is documented).
	GetStateRange(start, end string) (map[string][]byte, error)
	// SetResult records the invocation's return payload (query results).
	SetResult(value []byte)
}

// Contract is a deployed smart contract.
type Contract interface {
	// Name is the contract's chain-unique name.
	Name() string
	// Invoke executes one function against the stub. Returning an error
	// fails the proposal (no endorsement is produced).
	Invoke(stub Stub) error
}

// Registry holds deployed contracts.
type Registry struct{ contracts map[string]Contract }

// NewRegistry builds a registry over the given contracts.
func NewRegistry(contracts ...Contract) *Registry {
	r := &Registry{contracts: make(map[string]Contract, len(contracts))}
	for _, c := range contracts {
		r.contracts[c.Name()] = c
	}
	return r
}

// Get looks a contract up by name.
func (r *Registry) Get(name string) (Contract, bool) {
	c, ok := r.contracts[name]
	return c, ok
}

// Names lists deployed contract names, sorted.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.contracts))
	for n := range r.contracts {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// recordingStub implements Stub, recording the read and write sets of one
// simulation. Reads resolve through a StateReader; Fabric semantics apply:
// reads do not observe the transaction's own buffered writes, repeated reads
// of a key return the first observation, and the write set keeps the final
// value per key.
type recordingStub struct {
	reader    StateReader
	function  string
	args      []string
	readCache map[string]cachedRead
	reads     []protocol.ReadItem
	writeIdx  map[string]int
	writes    []protocol.WriteItem
	result    []byte
}

type cachedRead struct {
	value []byte
	found bool
}

func (s *recordingStub) Function() string { return s.function }
func (s *recordingStub) Args() []string   { return s.args }

func (s *recordingStub) GetState(key string) ([]byte, error) {
	if c, ok := s.readCache[key]; ok {
		if !c.found {
			return nil, nil
		}
		return append([]byte(nil), c.value...), nil
	}
	value, version, found, err := s.reader.Read(key)
	if err != nil {
		return nil, err
	}
	s.readCache[key] = cachedRead{value: value, found: found}
	// Absent keys are recorded with the zero version: the validator (and
	// the Sharp orderer) still checks the key stayed absent.
	item := protocol.ReadItem{Key: key}
	if found {
		item.Version = version
	}
	s.reads = append(s.reads, item)
	if !found {
		return nil, nil
	}
	return append([]byte(nil), value...), nil
}

func (s *recordingStub) PutState(key string, value []byte) error {
	w := protocol.WriteItem{Key: key, Value: append([]byte(nil), value...)}
	if i, ok := s.writeIdx[key]; ok {
		s.writes[i] = w
		return nil
	}
	s.writeIdx[key] = len(s.writes)
	s.writes = append(s.writes, w)
	return nil
}

func (s *recordingStub) DelState(key string) error {
	w := protocol.WriteItem{Key: key, Delete: true}
	if i, ok := s.writeIdx[key]; ok {
		s.writes[i] = w
		return nil
	}
	s.writeIdx[key] = len(s.writes)
	s.writes = append(s.writes, w)
	return nil
}

// GetStateRange implements Stub.
func (s *recordingStub) GetStateRange(start, end string) (map[string][]byte, error) {
	rr, ok := s.reader.(RangeReader)
	if !ok {
		return nil, fmt.Errorf("chaincode: state reader does not support range scans")
	}
	keys, err := rr.ReadRange(start, end)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]byte, len(keys))
	for _, k := range keys {
		v, err := s.GetState(k) // records the version dependency per key
		if err != nil {
			return nil, err
		}
		if v != nil {
			out[k] = v
		}
	}
	return out, nil
}

// SetResult implements Stub.
func (s *recordingStub) SetResult(value []byte) { s.result = append([]byte(nil), value...) }

// Simulate runs one contract invocation against reader and returns the
// recorded read/write set (the endorsement-phase simulation of Section 2.1).
func Simulate(c Contract, function string, args []string, reader StateReader) (protocol.RWSet, error) {
	rw, _, err := SimulateFull(c, function, args, reader)
	return rw, err
}

// SimulateFull is Simulate plus the invocation's result payload (set by the
// contract via Stub.SetResult; nil for pure updates).
func SimulateFull(c Contract, function string, args []string, reader StateReader) (protocol.RWSet, []byte, error) {
	stub := &recordingStub{
		reader:    reader,
		function:  function,
		args:      args,
		readCache: make(map[string]cachedRead),
		writeIdx:  make(map[string]int),
	}
	if err := c.Invoke(stub); err != nil {
		return protocol.RWSet{}, nil, err
	}
	return protocol.RWSet{Reads: stub.reads, Writes: stub.writes}, stub.result, nil
}

// SimulateAttempt is SimulateFull for speculative re-execution: when the
// invocation fails it still returns the read/write set recorded up to the
// failure point, so the caller can check whether the failure rests on reads
// that are final (a deterministic abort) or on reads another speculative
// execution may yet overwrite (retry). The returned error is the contract's.
func SimulateAttempt(c Contract, function string, args []string, reader StateReader) (protocol.RWSet, error) {
	stub := &recordingStub{
		reader:    reader,
		function:  function,
		args:      args,
		readCache: make(map[string]cachedRead),
		writeIdx:  make(map[string]int),
	}
	err := c.Invoke(stub)
	return protocol.RWSet{Reads: stub.reads, Writes: stub.writes}, err
}

// parseInt parses a decimal integer argument or stored balance.
func parseInt(s string) (int64, error) {
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("chaincode: bad integer %q", s)
	}
	return v, nil
}

func formatInt(v int64) []byte { return []byte(strconv.FormatInt(v, 10)) }

// readInt reads key as an integer balance; missing keys are an error.
func readInt(stub Stub, key string) (int64, error) {
	raw, err := stub.GetState(key)
	if err != nil {
		return 0, err
	}
	if raw == nil {
		return 0, fmt.Errorf("chaincode: account %q does not exist", key)
	}
	return parseInt(string(raw))
}

// needArgs validates the invocation arity.
func needArgs(stub Stub, n int) error {
	if len(stub.Args()) != n {
		return fmt.Errorf("chaincode: %s expects %d args, got %d", stub.Function(), n, len(stub.Args()))
	}
	return nil
}
