package chaincode

import (
	"fmt"
	"sort"
)

// Analytics maintains a metric population under a running aggregate: point
// updates adjust one metric and the aggregate in the same transaction, while
// scans range-read the whole population. The aggregate must always equal the
// sum of the metrics — a conservation law that lost updates on the (hot)
// aggregate key would break — and scans exercise the GetStateRange read-set
// path against concurrent point writes.
//
// Keys: "metric:<id>" per metric, MetricSumKey for the aggregate (kept
// outside the scanned prefix).
type Analytics struct{}

// MetricKey returns a metric's state key.
func MetricKey(id string) string { return "metric:" + id }

// MetricSumKey holds the running sum of every metric.
const MetricSumKey = "agg:metricsum"

// metricRange is the half-open key range covering every metric ("metric;"
// is the smallest key above the "metric:" prefix).
const metricRangeStart, metricRangeEnd = "metric:", "metric;"

// Name implements Contract.
func (Analytics) Name() string { return "analytics" }

// scanMetrics range-reads the whole metric population and sums it.
func scanMetrics(stub Stub) (int64, error) {
	kvs, err := stub.GetStateRange(metricRangeStart, metricRangeEnd)
	if err != nil {
		return 0, err
	}
	keys := make([]string, 0, len(kvs))
	for k := range kvs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var total int64
	for _, k := range keys {
		v, err := parseInt(string(kvs[k]))
		if err != nil {
			return 0, fmt.Errorf("chaincode: metric %q: %w", k, err)
		}
		total += v
	}
	return total, nil
}

// Invoke implements Contract.
//
// Functions:
//
//	update id delta — adjust one metric and the running aggregate
//	scan            — read-only range scan summing every metric
//	audit           — scan plus aggregate read, reporting both
func (Analytics) Invoke(stub Stub) error {
	args := stub.Args()
	switch stub.Function() {
	case "update":
		if err := needArgs(stub, 2); err != nil {
			return err
		}
		delta, err := parseInt(args[1])
		if err != nil {
			return err
		}
		v, err := readInt(stub, MetricKey(args[0]))
		if err != nil {
			return err
		}
		sum, err := readInt(stub, MetricSumKey)
		if err != nil {
			return err
		}
		if err := stub.PutState(MetricKey(args[0]), formatInt(v+delta)); err != nil {
			return err
		}
		return stub.PutState(MetricSumKey, formatInt(sum+delta))
	case "scan":
		total, err := scanMetrics(stub)
		if err != nil {
			return err
		}
		stub.SetResult(formatInt(total))
		return nil
	case "audit":
		total, err := scanMetrics(stub)
		if err != nil {
			return err
		}
		sum, err := readInt(stub, MetricSumKey)
		if err != nil {
			return err
		}
		stub.SetResult([]byte(fmt.Sprintf("scan=%d agg=%d", total, sum)))
		return nil
	default:
		return fmt.Errorf("chaincode: analytics has no function %q", stub.Function())
	}
}
