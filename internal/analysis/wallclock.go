package analysis

import (
	"go/ast"
	"go/types"
)

// WallClock flags ambient-nondeterminism reads in deterministic files:
// wall-clock queries (time.Now, time.Since, time.Until), the global
// math/rand stream, and environment reads. Replicas run these at different
// instants with different process state, so any value flowing from them
// into a sealed digest diverges. Time and randomness must arrive through
// injected seams (an Options field carrying a *rand.Rand or timestamps
// already fixed in the consensus stream) — the explicit-rng discipline the
// wire transport PR established.
var WallClock = &Analyzer{
	Name:  "wallclock",
	Doc:   "flags time.Now/Since/Until, global math/rand, and env reads in deterministic packages",
	Scope: DeterministicScope,
	Run:   runWallClock,
}

// wallClockBans maps package path -> banned package-level names. An empty
// set means "every package-level function" (global math/rand: any call
// advances the shared process-wide stream).
var wallClockBans = map[string]map[string]bool{
	"time": {"Now": true, "Since": true, "Until": true},
	"os": {
		"Getenv": true, "LookupEnv": true, "Environ": true, "ExpandEnv": true,
	},
	"math/rand":    nil,
	"math/rand/v2": nil,
}

// randConstructors are the math/rand names seaminject owns; wallclock
// leaves them alone so one site yields one finding.
var randConstructors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

func runWallClock(pass *Pass) {
	for _, file := range pass.Files {
		if !pass.InScope(file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.Info.Uses[id]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			if _, isFunc := obj.(*types.Func); !isFunc {
				return true
			}
			banned, watched := wallClockBans[obj.Pkg().Path()]
			if !watched {
				return true
			}
			if banned == nil {
				// Global math/rand: only package-level functions draw from
				// the shared stream; *rand.Rand methods are injected seams.
				if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
					return true
				}
				if randConstructors[obj.Name()] {
					return true
				}
			} else if !banned[obj.Name()] {
				return true
			}
			pass.Reportf(id.Pos(), "%s.%s in deterministic code: replicas must compute sealed output from the consensus stream alone; inject the value through an Options seam", obj.Pkg().Name(), obj.Name())
			return true
		})
	}
}
