package wire

import (
	"bytes"
	"testing"

	"fabricsharp/internal/ledger"
	"fabricsharp/internal/protocol"
)

// The fuzz targets pin the two codec-level safety properties the transport
// relies on: decoding arbitrary bytes never panics, and any input the
// decoder accepts is in canonical form (re-encoding reproduces it exactly).
// CI runs a short -fuzztime smoke of each; the corpus accumulates locally.

func FuzzDecodeTransaction(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeTransaction(&protocol.Transaction{}))
	f.Add(EncodeTransaction(fuzzSampleTx()))
	for _, tx := range fuzzInvocationTxs() {
		f.Add(EncodeTransaction(tx))
	}
	trunc := EncodeTransaction(fuzzSampleTx())
	f.Add(trunc[:len(trunc)/2])
	f.Fuzz(func(t *testing.T, b []byte) {
		tx, err := DecodeTransaction(b)
		if err != nil {
			return
		}
		re := EncodeTransaction(tx)
		if !bytes.Equal(re, b) {
			t.Fatalf("decode∘encode not identity:\n in  %x\n out %x", b, re)
		}
	})
}

func FuzzDecodeBlock(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeBlock(&ledger.Block{}))
	f.Add(EncodeBlock(&ledger.Block{
		Header:       ledger.Header{Number: 3, PrevHash: []byte{1}, DataHash: []byte{2}},
		Transactions: []*protocol.Transaction{fuzzSampleTx(), {}},
		Validation:   []protocol.ValidationCode{protocol.Valid, protocol.AbortCycle},
	}))
	f.Add(EncodeBlock(&ledger.Block{
		Header:       ledger.Header{Number: 9, PrevHash: []byte{7}, DataHash: []byte{8}},
		Transactions: fuzzInvocationTxs(),
		Validation:   []protocol.ValidationCode{protocol.Rescued, protocol.MVCCConflict},
		RescueDigest: bytes.Repeat([]byte{0xab}, 32),
	}))
	f.Fuzz(func(t *testing.T, b []byte) {
		blk, err := DecodeBlock(b)
		if err != nil {
			return
		}
		re := EncodeBlock(blk)
		if !bytes.Equal(re, b) {
			t.Fatalf("decode∘encode not identity:\n in  %x\n out %x", b, re)
		}
	})
}

// fuzzInvocationTxs seeds invocation-bearing shapes: a SmallBank transfer
// with full args (what the rescue phase re-executes) and an invocation with
// no args at all.
func fuzzInvocationTxs() []*protocol.Transaction {
	return []*protocol.Transaction{
		{
			ID:            "fuzz-pay",
			ClientID:      "c1",
			Contract:      "smallbank",
			Function:      "send_payment",
			Args:          []string{"alice", "bob", "25"},
			SnapshotBlock: 12,
			RWSet: protocol.RWSet{
				Reads: []protocol.ReadItem{
					{Key: "checking:alice", Version: protocol.Version{Block: 3, Pos: 1}},
					{Key: "checking:bob", Version: protocol.Version{Block: 7, Pos: 4}},
				},
				Writes: []protocol.WriteItem{
					{Key: "checking:alice", Value: []byte("75")},
					{Key: "checking:bob", Value: []byte("125")},
				},
			},
		},
		{ID: "fuzz-noargs", Contract: "kv", Function: "noop"},
	}
}

func fuzzSampleTx() *protocol.Transaction {
	return &protocol.Transaction{
		ID:            "fuzz-1",
		ClientID:      "c",
		Contract:      "kv",
		Function:      "rmw",
		Args:          []string{"k", "1"},
		SnapshotBlock: 5,
		RWSet: protocol.RWSet{
			Reads:  []protocol.ReadItem{{Key: "k"}},
			Writes: []protocol.WriteItem{{Key: "k", Value: []byte("2")}, {Key: "d", Delete: true}},
		},
		Endorsements: []protocol.Endorsement{{EndorserID: "peer0", Signature: []byte{1, 2, 3}}},
	}
}
