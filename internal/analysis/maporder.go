package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags `range` over a map in deterministic files. Go randomizes
// map iteration order per run, so any map range whose body's effect depends
// on visit order makes sealed bytes differ across replicas — the exact
// divergence class the replica-identical contract bans.
//
// A site stays silent when the loop body is provably order-insensitive:
//
//   - delete-only bodies (set subtraction commutes),
//   - append-then-sort: the body only collects values derived from the
//     range variables into a slice, and the enclosing block sorts that
//     slice before its next use (the sort-guard idiom),
//   - commutative bodies: every statement is an increment/decrement, a
//     commutative op-assign (+= -= |= ^= &=), an idempotent or
//     uniquely-keyed store, a delete, a pure iteration-local definition,
//     or an if/nested-range composed of the same — with no statement
//     reading a value another iteration may have written and no impure
//     calls (whose side effects would observe visit order),
//
// or when the site carries a `//sharp:orderinvariant <reason>` directive,
// which lands in the checked-in suppression inventory.
var MapOrder = &Analyzer{
	Name:  "maporder",
	Doc:   "flags range over maps in deterministic packages unless provably order-insensitive or suppressed",
	Scope: DeterministicScope,
	Run:   runMapOrder,
}

func runMapOrder(pass *Pass) {
	for _, file := range pass.Files {
		if !pass.InScope(file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.Info.Types[rs.X].Type
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if orderInsensitive(pass, file, rs) {
				return true
			}
			pass.Reportf(rs.For, "range over map %s in deterministic code: iteration order is randomized; sort the keys, restructure, or annotate //sharp:orderinvariant <reason>", exprString(rs.X))
			return true
		})
	}
}

// orderInsensitive applies the conservative recognizers. Anything it
// cannot prove is reported — the contract errs toward a human look.
func orderInsensitive(pass *Pass, file *ast.File, rs *ast.RangeStmt) bool {
	env := newLoopEnv(pass, rs)
	if commutativeStmts(env, rs, rs.Body.List) {
		return true
	}
	return appendThenSorted(pass, file, rs, env)
}

// loopEnv carries the per-loop facts the recognizers share: which objects
// the body writes (excluding iteration-local definitions, which cannot
// carry state between iterations) and which objects are iteration-local.
type loopEnv struct {
	pass *Pass
	// written holds objects the body mutates that outlive one iteration:
	// outer variables assigned or op-assigned, fields and map/slice bases
	// stored through, delete targets. Reading any of these inside the
	// body means one iteration can observe another's effect — order.
	written map[types.Object]bool
	// locals holds objects defined (:=) inside the body. Each iteration
	// re-creates them, so they cannot leak state across iterations.
	locals map[types.Object]bool
}

func newLoopEnv(pass *Pass, rs *ast.RangeStmt) *loopEnv {
	env := &loopEnv{pass: pass, written: map[types.Object]bool{}, locals: map[types.Object]bool{}}
	if rs.Tok == token.DEFINE {
		// The loop's own key/value bindings are fresh per iteration.
		for _, e := range []ast.Expr{rs.Key, rs.Value} {
			if id, ok := e.(*ast.Ident); ok {
				if obj := pass.Info.Defs[id]; obj != nil {
					env.locals[obj] = true
				}
			}
		}
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if s.Tok == token.DEFINE {
					if id, ok := lhs.(*ast.Ident); ok {
						if obj := pass.Info.Defs[id]; obj != nil {
							env.locals[obj] = true
						}
					}
					continue
				}
				env.recordWrite(lhs)
			}
		case *ast.IncDecStmt:
			env.recordWrite(s.X)
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok && isBuiltin(pass, call, "delete") && len(call.Args) > 0 {
				env.recordWrite(call.Args[0])
			}
		case *ast.RangeStmt:
			// Nested range key/value are iteration-local too.
			for _, e := range []ast.Expr{s.Key, s.Value} {
				if id, ok := e.(*ast.Ident); ok {
					if obj := pass.Info.Defs[id]; obj != nil {
						env.locals[obj] = true
					}
				}
			}
		}
		return true
	})
	// Iteration-locals never count as cross-iteration writes.
	for obj := range env.locals {
		delete(env.written, obj)
	}
	return env
}

// recordWrite registers the mutated object behind an lvalue: the variable
// itself, the field selected, or the base of an index expression.
func (env *loopEnv) recordWrite(lhs ast.Expr) {
	switch x := unparen(lhs).(type) {
	case *ast.Ident:
		if obj := env.pass.Info.Uses[x]; obj != nil {
			env.written[obj] = true
		}
	case *ast.SelectorExpr:
		if obj := env.pass.Info.Uses[x.Sel]; obj != nil {
			env.written[obj] = true
		}
		env.recordWrite(x.X) // storing through s.f also taints s's chain
	case *ast.IndexExpr:
		env.recordWrite(x.X)
	case *ast.StarExpr:
		env.recordWrite(x.X)
	}
}

// pure reports whether expr reads no cross-iteration-written object and
// performs no call that could observe iteration order. Allowed calls are
// the effect-free builtins (len, cap, make, new, min, max), conversions,
// and append whose destination is order-free (a fresh nil slice or an
// iteration-local).
func (env *loopEnv) pure(expr ast.Expr) bool {
	if expr == nil {
		return true
	}
	ok := true
	ast.Inspect(expr, func(n ast.Node) bool {
		if !ok {
			return false
		}
		switch x := n.(type) {
		case *ast.Ident:
			if obj := env.pass.Info.Uses[x]; obj != nil && env.written[obj] {
				ok = false
			}
		case *ast.CallExpr:
			if !env.pureCall(x) {
				ok = false
			}
		case *ast.FuncLit:
			// A closure's body runs now only if called — and calls are
			// vetted — but building one that captures loop state and
			// escapes is a write we cannot see. Reject.
			ok = false
		}
		return ok
	})
	return ok
}

var pureBuiltins = map[string]bool{
	"len": true, "cap": true, "make": true, "new": true, "min": true, "max": true,
}

func (env *loopEnv) pureCall(call *ast.CallExpr) bool {
	// Type conversions carry no effects.
	if tv, ok := env.pass.Info.Types[call.Fun]; ok && tv.IsType() {
		return true
	}
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if _, isBuiltin := env.pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return false
	}
	if pureBuiltins[id.Name] {
		return true
	}
	if id.Name == "append" && len(call.Args) > 0 {
		// append is pure enough when it can't mutate shared backing:
		// appending to a fresh nil slice or an iteration-local.
		switch dst := unparen(call.Args[0]).(type) {
		case *ast.Ident:
			if obj := env.pass.Info.Uses[dst]; obj != nil && env.locals[obj] {
				return true
			}
		case *ast.CallExpr: // e.g. append([]byte(nil), src...)
			return env.pure(dst)
		}
	}
	return false
}

// commutativeStmts reports whether every statement computes an effect
// invariant under permutation of the iterations of rs.
func commutativeStmts(env *loopEnv, rs *ast.RangeStmt, list []ast.Stmt) bool {
	for _, stmt := range list {
		if !commutativeStmt(env, rs, stmt) {
			return false
		}
	}
	return true
}

func commutativeStmt(env *loopEnv, rs *ast.RangeStmt, stmt ast.Stmt) bool {
	switch s := stmt.(type) {
	case *ast.IncDecStmt:
		// x++ / s.f++ / a[i]++ commute with themselves; the target's base
		// and index must themselves be order-free reads.
		return orderFreeTarget(env, s.X)
	case *ast.AssignStmt:
		return commutativeAssign(env, rs, s)
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		if isBuiltin(env.pass, call, "delete") {
			for _, a := range call.Args {
				if !deleteArgOK(env, a) {
					return false
				}
			}
			return true
		}
		return false
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE
	case *ast.IfStmt:
		if s.Init != nil || !env.pure(s.Cond) {
			return false
		}
		if !commutativeStmts(env, rs, s.Body.List) {
			return false
		}
		if s.Else != nil {
			return commutativeStmt(env, rs, s.Else)
		}
		return true
	case *ast.BlockStmt:
		return commutativeStmts(env, rs, s.List)
	case *ast.RangeStmt:
		// A nested loop over an order-free collection expression, itself
		// built of commutative statements, stays commutative. Its own
		// unique-key facts apply inside it.
		return env.pure(s.X) && commutativeStmts(env, s, s.Body.List)
	default:
		return false
	}
}

func commutativeAssign(env *loopEnv, rs *ast.RangeStmt, s *ast.AssignStmt) bool {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return false
	}
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN, token.AND_ASSIGN:
		// accumulator op= e : the op commutes; e must be an order-free read.
		return orderFreeTarget(env, s.Lhs[0]) && env.pure(s.Rhs[0])
	case token.DEFINE:
		// Iteration-local definition: pure RHS means the local is a mere
		// renaming of order-free values.
		if _, ok := s.Lhs[0].(*ast.Ident); !ok {
			return false
		}
		return env.pure(s.Rhs[0])
	case token.ASSIGN:
		ix, ok := unparen(s.Lhs[0]).(*ast.IndexExpr)
		if !ok {
			return false
		}
		if !orderFreeTarget(env, ix.X) || !env.pure(ix.Index) || !env.pure(s.Rhs[0]) {
			return false
		}
		// Distinct iterations must not fight over one slot: either the
		// index is this loop's unique range key, or the stored value is a
		// literal constant (idempotent — collisions write the same bytes).
		return indexIsRangeKey(env.pass, rs, ix.Index) || idempotentValue(env.pass, s.Rhs[0])
	}
	return false
}

// orderFreeTarget vets the navigation part of an lvalue (base chain and
// indexes): it may be written by the loop (stores commute per the caller's
// rules) but must not be *computed from* loop-written state.
func orderFreeTarget(env *loopEnv, lhs ast.Expr) bool {
	switch x := unparen(lhs).(type) {
	case *ast.Ident:
		return true
	case *ast.SelectorExpr:
		return orderFreeTarget(env, x.X)
	case *ast.IndexExpr:
		return orderFreeTarget(env, x.X) && env.pure(x.Index)
	case *ast.StarExpr:
		return orderFreeTarget(env, x.X)
	}
	return false
}

// deleteArgOK: delete's map argument is a write target (commutes); the key
// must be an order-free read.
func deleteArgOK(env *loopEnv, arg ast.Expr) bool {
	if orderFreeTarget(env, arg) {
		return true
	}
	return env.pure(arg)
}

// indexIsRangeKey reports whether expr is exactly rs's key variable — map
// range keys (and slice range indexes) are unique per iteration, so keyed
// stores cannot collide.
func indexIsRangeKey(pass *Pass, rs *ast.RangeStmt, expr ast.Expr) bool {
	id, ok := unparen(expr).(*ast.Ident)
	if !ok {
		return false
	}
	keyID, ok := rs.Key.(*ast.Ident)
	if !ok || keyID.Name == "_" {
		return false
	}
	obj := pass.Info.Uses[id]
	return obj != nil && (obj == pass.Info.Defs[keyID] || obj == pass.Info.Uses[keyID])
}

// idempotentValue: storing a compile-time-fixed value — a literal, a
// constant, an empty composite literal, true/false/nil — is idempotent, so
// slot collisions across iterations still commute.
func idempotentValue(pass *Pass, expr ast.Expr) bool {
	switch x := unparen(expr).(type) {
	case *ast.BasicLit:
		return true
	case *ast.CompositeLit:
		return len(x.Elts) == 0
	case *ast.Ident:
		if tv, ok := pass.Info.Types[x]; ok && (tv.Value != nil || tv.IsNil()) {
			return true
		}
	}
	if tv, ok := pass.Info.Types[expr]; ok && tv.Value != nil {
		return true
	}
	return false
}

// appendThenSorted recognizes the sort-guard idiom:
//
//	for k := range m {
//		keys = append(keys, k)        // possibly if-guarded, possibly
//	}                                 // after pure local defines
//	sort.Strings(keys)                // or sort.Slice/sort.Sort/slices.*
//
// The body may contain pure iteration-local definitions and exactly one
// append into an outer slice (optionally inside an if whose condition is
// order-free), and the first statement after the loop that mentions the
// slice must be a sort call over it — then iteration order never escapes.
func appendThenSorted(pass *Pass, file *ast.File, rs *ast.RangeStmt, env *loopEnv) bool {
	dst := singleCollector(env, rs.Body.List)
	if dst == nil {
		return false
	}
	return sortedBeforeNextUse(pass, file, rs, dst)
}

// singleCollector returns the destination slice object when the statements
// are exactly pure local defines plus one (possibly guarded) append into
// an outer variable whose arguments are order-free reads.
func singleCollector(env *loopEnv, list []ast.Stmt) types.Object {
	var dst types.Object
	var walk func(list []ast.Stmt) bool
	walk = func(list []ast.Stmt) bool {
		for _, stmt := range list {
			switch s := stmt.(type) {
			case *ast.AssignStmt:
				if s.Tok == token.DEFINE {
					if len(s.Lhs) != 1 || len(s.Rhs) != 1 || !env.pure(s.Rhs[0]) {
						return false
					}
					continue
				}
				if dst != nil || len(s.Lhs) != 1 || len(s.Rhs) != 1 || s.Tok != token.ASSIGN {
					return false
				}
				id, ok := s.Lhs[0].(*ast.Ident)
				if !ok {
					return false
				}
				call, ok := s.Rhs[0].(*ast.CallExpr)
				if !ok || !isBuiltin(env.pass, call, "append") || len(call.Args) < 2 {
					return false
				}
				base, ok := unparen(call.Args[0]).(*ast.Ident)
				if !ok || base.Name != id.Name {
					return false
				}
				for _, a := range call.Args[1:] {
					if !appendArgOK(env, a) {
						return false
					}
				}
				dst = env.pass.Info.Uses[id]
				if dst == nil {
					return false
				}
			case *ast.IfStmt:
				if s.Init != nil || s.Else != nil || !env.pure(s.Cond) {
					return false
				}
				if !walk(s.Body.List) {
					return false
				}
			case *ast.BranchStmt:
				if s.Tok != token.CONTINUE {
					return false
				}
			default:
				return false
			}
		}
		return true
	}
	if !walk(list) || dst == nil {
		return nil
	}
	return dst
}

// appendArgOK: collected values must derive from order-free reads — the
// sort afterwards can only launder the *order* of the slice, not values
// that already depend on when an iteration ran.
func appendArgOK(env *loopEnv, arg ast.Expr) bool {
	return env.pure(arg)
}

// sortedBeforeNextUse scans the statements after rs in its enclosing block:
// the first one referencing obj must be a sort call over it.
func sortedBeforeNextUse(pass *Pass, file *ast.File, rs *ast.RangeStmt, obj types.Object) bool {
	block := enclosingBlock(file, rs)
	if block == nil {
		return false
	}
	idx := -1
	for i, stmt := range block.List {
		if stmt == ast.Stmt(rs) {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false
	}
	for _, stmt := range block.List[idx+1:] {
		if !references(pass, stmt, obj) {
			continue
		}
		return isSortCallOver(pass, stmt, obj)
	}
	return false // never sorted (or never used again — then why collect?)
}

// isSortCallOver reports whether stmt is a call into package sort or
// slices mentioning obj among its arguments.
func isSortCallOver(pass *Pass, stmt ast.Stmt, obj types.Object) bool {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkgID, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.Info.Uses[pkgID].(*types.PkgName)
	if !ok {
		return false
	}
	if p := pn.Imported().Path(); p != "sort" && p != "slices" {
		return false
	}
	for _, arg := range call.Args {
		if references(pass, arg, obj) {
			return true
		}
	}
	return false
}

// isBuiltin reports whether call invokes the named predeclared function.
func isBuiltin(pass *Pass, call *ast.CallExpr, name string) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.Info.Uses[id].(*types.Builtin)
	return ok
}

// references reports whether node mentions obj.
func references(pass *Pass, node ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// enclosingBlock returns the block whose statement list directly contains n.
func enclosingBlock(file *ast.File, n ast.Node) *ast.BlockStmt {
	var found *ast.BlockStmt
	ast.Inspect(file, func(cand ast.Node) bool {
		if found != nil {
			return false
		}
		b, ok := cand.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for _, stmt := range b.List {
			if stmt == n {
				found = b
				return false
			}
		}
		return true
	})
	return found
}

// exprString renders a short source-ish form of an expression for messages.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.CallExpr:
		return exprString(x.Fun) + "(…)"
	case *ast.IndexExpr:
		return exprString(x.X) + "[…]"
	case *ast.ParenExpr:
		return exprString(x.X)
	default:
		return "expression"
	}
}
