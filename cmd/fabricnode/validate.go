package main

import (
	"fmt"
	"strings"
	"time"

	"fabricsharp/internal/scenario"
)

// nodeFlags is the cross-validated subset of fabricnode's flags. Validation
// runs before any socket is opened or directory created: a half-configured
// node that joins a cluster and then stalls (an orderer with a raft cluster
// but no identity, a redirect map that cannot name the local member, a peer
// whose name no other node has in its -peers list) is strictly worse than
// one that refuses to start with a precise complaint.
type nodeFlags struct {
	Role          string
	Name          string
	OrdererAddrs  []string
	PeerNames     []string
	RaftID        string
	RaftCluster   []string
	RaftRedirects map[string]string
	RaftDir       string
	RaftElection  time.Duration
	Workload      string
	Accounts      int
}

func (f nodeFlags) validate() error {
	if len(f.PeerNames) == 0 {
		return fmt.Errorf("-peers must name at least one validating peer")
	}
	if dup := firstDuplicate(f.PeerNames); dup != "" {
		return fmt.Errorf("-peers lists %q twice", dup)
	}
	if f.Workload == "" {
		if f.Accounts != 0 {
			return fmt.Errorf("-accounts tunes a scenario's genesis; it requires -workload")
		}
	} else {
		if _, ok := scenario.Get(f.Workload); !ok {
			return fmt.Errorf("unknown -workload %q (have %s)", f.Workload, strings.Join(scenario.Names(), ", "))
		}
		if f.Accounts < 0 {
			return fmt.Errorf("-accounts must be non-negative, got %d", f.Accounts)
		}
	}
	switch f.Role {
	case "orderer":
		if f.Name != "" {
			return fmt.Errorf("-name is a peer flag; the ordering role has no peer identity")
		}
		if len(f.OrdererAddrs) != 0 {
			return fmt.Errorf("-orderer is a peer flag (the address peers subscribe to); an orderer only listens")
		}
		return f.validateRaft()
	case "peer":
		if f.Name == "" {
			return fmt.Errorf("role peer requires -name")
		}
		if !contains(f.PeerNames, f.Name) {
			return fmt.Errorf("-name %q does not appear in -peers %s; every node must agree on the cluster-wide peer list",
				f.Name, strings.Join(f.PeerNames, ","))
		}
		if len(f.OrdererAddrs) == 0 {
			return fmt.Errorf("role peer requires -orderer")
		}
		if f.RaftID != "" || len(f.RaftCluster) != 0 || len(f.RaftRedirects) != 0 ||
			f.RaftDir != "" || f.RaftElection != 0 {
			return fmt.Errorf("raft flags configure the ordering service; role peer does not accept them")
		}
		return nil
	case "":
		return fmt.Errorf("-role is required (orderer | peer)")
	default:
		return fmt.Errorf("unknown -role %q (want orderer or peer)", f.Role)
	}
}

// validateRaft enforces the all-or-nothing raft flag set: a standalone
// orderer carries none of them; a cluster member carries a cluster list
// that includes its own -raft-id, and redirect hints (when given) that
// cover every member including itself.
func (f nodeFlags) validateRaft() error {
	if len(f.RaftCluster) == 0 {
		switch {
		case f.RaftID != "":
			return fmt.Errorf("-raft-id %q without -raft-cluster: a standalone orderer has no raft identity", f.RaftID)
		case len(f.RaftRedirects) != 0:
			return fmt.Errorf("-raft-redirects without -raft-cluster: nothing to redirect between")
		case f.RaftDir != "":
			return fmt.Errorf("-raft-dir without -raft-cluster: a standalone orderer persists no raft state")
		case f.RaftElection != 0:
			return fmt.Errorf("-raft-election-timeout without -raft-cluster: no elections without a cluster")
		}
		return nil
	}
	if f.RaftID == "" {
		return fmt.Errorf("-raft-cluster requires -raft-id: the member must know which cluster address is its own")
	}
	if dup := firstDuplicate(f.RaftCluster); dup != "" {
		return fmt.Errorf("-raft-cluster lists %q twice", dup)
	}
	if !contains(f.RaftCluster, f.RaftID) {
		return fmt.Errorf("-raft-id %q does not appear in -raft-cluster %s",
			f.RaftID, strings.Join(f.RaftCluster, ","))
	}
	if len(f.RaftCluster) < 2 {
		return fmt.Errorf("-raft-cluster needs at least two members (a single member is a standalone orderer; drop the raft flags)")
	}
	for raftAddr := range f.RaftRedirects {
		if !contains(f.RaftCluster, raftAddr) {
			return fmt.Errorf("-raft-redirects names %q, which is not in -raft-cluster", raftAddr)
		}
	}
	if len(f.RaftRedirects) != 0 {
		if _, ok := f.RaftRedirects[f.RaftID]; !ok {
			return fmt.Errorf("-raft-redirects omits the local member %q: peers of a remote leader could never be redirected here", f.RaftID)
		}
	}
	return nil
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

func firstDuplicate(xs []string) string {
	seen := make(map[string]bool, len(xs))
	for _, x := range xs {
		if seen[x] {
			return x
		}
		seen[x] = true
	}
	return ""
}
