// Supplychain: the permissioned-blockchain application class the paper's
// introduction motivates. Shipments are registered, shipped, inspected and
// transferred by different organizations concurrently; Sharp's reordering
// keeps concurrent updates to the same crate serializable instead of
// aborting them wholesale.
//
//	go run ./examples/supplychain
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"sync"
	"time"

	fabricsharp "fabricsharp"
)

func main() {
	net, err := fabricsharp.NewNetwork(fabricsharp.NetworkOptions{
		System:       fabricsharp.SystemSharp,
		BlockSize:    8,
		BlockTimeout: 80 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer net.Close()

	manufacturer, _ := net.NewClient("acme-manufacturing")
	shipper, _ := net.NewClient("oceanic-shipping")
	customs, _ := net.NewClient("customs-office")

	// Register a fleet of crates.
	crates := []string{"crate-1", "crate-2", "crate-3", "crate-4"}
	for _, c := range crates {
		if _, err := manufacturer.Submit("supplychain", "register", c, "acme", "shenzhen"); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("registered %d crates in shenzhen\n", len(crates))

	// Concurrent operations by independent organizations: the shipper moves
	// crates along the route while customs stamps inspections — sometimes
	// on the same crate at the same time.
	route := []string{"singapore", "colombo", "rotterdam"}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for _, hop := range route {
			for _, c := range crates {
				if res, err := shipper.Submit("supplychain", "ship", c, hop); err != nil {
					log.Printf("ship %s: %v", c, err)
				} else if !res.Committed() {
					log.Printf("ship %s aborted: %s (retrying)", c, res.Code)
					shipper.Submit("supplychain", "ship", c, hop)
				}
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			c := crates[i%len(crates)]
			if res, err := customs.Submit("supplychain", "inspect", c, fmt.Sprintf("checkpoint-%d", i)); err != nil {
				log.Printf("inspect %s: %v", c, err)
			} else if !res.Committed() {
				log.Printf("inspect %s aborted: %s", c, res.Code)
			}
		}
	}()
	wg.Wait()

	// Hand everything over to the buyer.
	for _, c := range crates {
		if _, err := manufacturer.Submit("supplychain", "transfer", c, "globex"); err != nil {
			log.Fatal(err)
		}
	}
	net.WaitIdle(5 * time.Second)

	// Track the fleet.
	fmt.Println("final manifest:")
	for _, c := range crates {
		raw, err := manufacturer.Query("supplychain", "track", c)
		if err != nil {
			log.Fatal(err)
		}
		var item struct {
			Owner    string `json:"owner"`
			Location string `json:"location"`
			Hops     int    `json:"hops"`
			Status   string `json:"status"`
		}
		if err := json.Unmarshal(raw, &item); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s: owner=%s location=%s hops=%d status=%s\n",
			c, item.Owner, item.Location, item.Hops, item.Status)
	}
	fmt.Printf("ledger height: %d blocks\n", net.Height())
}
