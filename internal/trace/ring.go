package trace

import (
	"sort"
	"sync/atomic"
)

// MaxTxIDLen is the longest transaction-ID prefix a slot stores. Client IDs
// are "<client>-<seq>" (well under this); longer IDs are truncated, which
// only risks a timeline join collision, never corruption.
const MaxTxIDLen = 48

// DefaultRingSize is the per-node ring capacity when the config leaves it
// unset: 128Ki events ≈ 3–4 blocks' worth per thousand transactions across
// all stages — hours of smoke traffic, megabytes of memory.
const DefaultRingSize = 1 << 17

// payloadWords is the per-slot payload: wall clock, block number, a packed
// stage/len word, and MaxTxIDLen bytes of transaction ID.
const payloadWords = 3 + MaxTxIDLen/8

// slotBusy marks a slot mid-write. Tickets start at 1 and would need 2^64-1
// records to collide with it.
const slotBusy = ^uint64(0)

// slot is one preallocated ring entry. Every word is atomic — the seqlock
// protocol below needs no fences beyond Go's atomic ordering, and the race
// detector agrees (drains run concurrently with writers by design).
//
// Layout: seq is the claiming ticket (0 = never written, slotBusy =
// mid-write); words[0] = wall-clock ns, words[1] = block, words[2] =
// stage<<8 | len(txID), words[3:] = txID bytes packed little-endian.
type slot struct {
	seq   atomic.Uint64
	words [payloadWords]atomic.Uint64
}

// Ring is a fixed-size lock-free circular event buffer: an atomic cursor
// hands each writer a unique ticket, the ticket picks a preallocated slot,
// and wraparound overwrites the oldest events. The record path takes no
// locks and performs no allocations; drains (Snapshot) are concurrent-safe
// and return only consistent events, skipping any slot caught mid-write.
//
// Per-slot protocol (a seqlock variant with ticket-claimed ownership):
//
//	writer: CAS seq -> slotBusy, store payload words, store seq = ticket
//	reader: t1 := seq; read payload; t2 := seq; accept iff t1 == t2 and
//	        t1 is a real ticket
//
// Unique tickets make the validation ABA-free. Two writers can only race
// on one slot when one has lapped the entire ring while the other's write
// was still in flight; the CAS then makes the late writer drop its event
// (counted by Recorded minus the surviving window) instead of blocking.
type Ring struct {
	mask   uint64
	cursor atomic.Uint64
	slots  []slot
}

// NewRing builds a ring with at least the given capacity, rounded up to a
// power of two; capacity <= 0 selects DefaultRingSize.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultRingSize
	}
	size := 1
	for size < capacity {
		size <<= 1
	}
	return &Ring{mask: uint64(size - 1), slots: make([]slot, size)}
}

// Cap returns the ring's slot count.
func (r *Ring) Cap() int { return len(r.slots) }

// Recorded returns the lifetime event count (tickets issued).
func (r *Ring) Recorded() uint64 { return r.cursor.Load() }

// RecordAt stores one event with an explicit timestamp. The hot path:
// zero allocations, no locks, wait-free except for one CAS retry per
// concurrent claimer of the same slot.
func (r *Ring) RecordAt(txID string, stage Stage, block uint64, wallNS int64) {
	if len(txID) > MaxTxIDLen {
		txID = txID[:MaxTxIDLen]
	}
	ticket := r.cursor.Add(1)
	s := &r.slots[(ticket-1)&r.mask]
	for {
		cur := s.seq.Load()
		if cur == slotBusy {
			// A writer that lapped the whole ring owns this slot mid-write;
			// its event is newer — drop ours rather than block or corrupt.
			return
		}
		if s.seq.CompareAndSwap(cur, slotBusy) {
			break
		}
	}
	s.words[0].Store(uint64(wallNS))
	s.words[1].Store(block)
	s.words[2].Store(uint64(stage)<<8 | uint64(len(txID)))
	var word uint64
	wi := 3
	for i := 0; i < len(txID); i++ {
		word |= uint64(txID[i]) << ((i & 7) * 8)
		if i&7 == 7 {
			s.words[wi].Store(word)
			wi++
			word = 0
		}
	}
	if len(txID)&7 != 0 {
		s.words[wi].Store(word)
	}
	s.seq.Store(ticket)
}

// Snapshot drains a consistent view of the ring: every returned event was
// fully recorded (torn slots are skipped after bounded retries), ordered
// oldest-first by ticket. Writers proceed concurrently; the result is a
// consistent prefix-window of the record stream, at most Cap events deep.
func (r *Ring) Snapshot() []Event {
	out := make([]Event, 0, len(r.slots))
	for i := range r.slots {
		s := &r.slots[i]
		for attempt := 0; attempt < 4; attempt++ {
			t1 := s.seq.Load()
			if t1 == 0 || t1 == slotBusy {
				break // never written, or mid-write right now
			}
			var w [payloadWords]uint64
			for j := range w {
				w[j] = s.words[j].Load()
			}
			if s.seq.Load() != t1 {
				continue // a writer overlapped the read; retry
			}
			if ev, ok := decodeSlot(t1, &w); ok {
				out = append(out, ev)
			}
			break
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// decodeSlot unpacks a validated slot image.
func decodeSlot(ticket uint64, w *[payloadWords]uint64) (Event, bool) {
	meta := w[2]
	idLen := int(meta & 0xff)
	stage := Stage(meta >> 8)
	if idLen > MaxTxIDLen || stage < StageSubmit || stage >= stageEnd {
		return Event{}, false // unreachable unless the protocol is broken
	}
	id := make([]byte, idLen)
	for i := 0; i < idLen; i++ {
		id[i] = byte(w[3+i/8] >> ((i & 7) * 8))
	}
	return Event{
		TxID:   string(id),
		Stage:  stage,
		Block:  w[1],
		WallNS: int64(w[0]),
		Seq:    ticket,
	}, true
}
