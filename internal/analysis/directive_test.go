package analysis

import (
	"go/token"
	"strings"
	"testing"
)

func TestParseDirective(t *testing.T) {
	pos := token.Position{Filename: "x.go", Line: 10, Column: 2}
	cases := []struct {
		text     string
		analyzer string
		reason   string
		wantErr  string
	}{
		{text: "//sharp:orderinvariant bloom union commutes", analyzer: "maporder", reason: "bloom union commutes"},
		{text: "//sharp:allow wallclock startup-only env read", analyzer: "wallclock", reason: "startup-only env read"},
		{text: "//sharp:orderinvariant", wantErr: "needs a reason"},
		{text: "//sharp:orderinvariant   ", wantErr: "needs a reason"},
		{text: "//sharp:allow wallclock", wantErr: "needs an analyzer name and a reason"},
		{text: "//sharp:allow", wantErr: "needs an analyzer name and a reason"},
		{text: "//sharp:allow nosuch because reasons", wantErr: "unknown analyzer"},
		{text: "//sharp:ignore everything", wantErr: "unknown //sharp: directive"},
	}
	for _, c := range cases {
		d, err := parseDirective(c.text, pos)
		if c.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("parseDirective(%q) error = %v, want containing %q", c.text, err, c.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseDirective(%q): %v", c.text, err)
			continue
		}
		if d.Analyzer != c.analyzer || d.Reason != c.reason {
			t.Errorf("parseDirective(%q) = {%s %q}, want {%s %q}", c.text, d.Analyzer, d.Reason, c.analyzer, c.reason)
		}
	}
}

func TestDirectiveCovers(t *testing.T) {
	d := &Directive{Analyzer: "maporder", Pos: token.Position{Filename: "a.go", Line: 5}}
	at := func(file string, line int) token.Position { return token.Position{Filename: file, Line: line} }
	if !d.covers("maporder", at("a.go", 5)) {
		t.Error("same line should be covered")
	}
	if !d.covers("maporder", at("a.go", 6)) {
		t.Error("line directly beneath should be covered")
	}
	if d.covers("maporder", at("a.go", 7)) {
		t.Error("two lines down must not be covered")
	}
	if d.covers("maporder", at("b.go", 5)) {
		t.Error("other file must not be covered")
	}
	if d.covers("wallclock", at("a.go", 5)) {
		t.Error("other analyzer must not be covered")
	}
}
