// Command benchall regenerates the paper's evaluation: every table and
// figure of Section 5, printed as ASCII tables.
//
// Usage:
//
//	benchall [-quick] [-seed N] [-fig id]
//
// where id is one of: 1, t1, 10, 11, 12, 13, 14, 15, reorder, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"fabricsharp/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "short measurement windows (5s virtual instead of 20s)")
	seed := flag.Int64("seed", 42, "random seed for every run")
	fig := flag.String("fig", "all", "which exhibit: 1, t1, 10, 11, 12, 13, 14, 15, reorder, ablation, all")
	flag.Parse()

	opts := bench.Options{Quick: *quick, Seed: *seed}
	start := time.Now()
	var tables []*bench.Table
	switch *fig {
	case "1":
		tables = []*bench.Table{bench.Figure1(opts)}
	case "t1":
		tables = []*bench.Table{bench.Table1()}
	case "10":
		tables = bench.Figure10(opts)
	case "11":
		tables = bench.Figure11(opts)
	case "12":
		tables = bench.Figure12(opts)
	case "13":
		tables = bench.Figure13(opts)
	case "14":
		tables = bench.Figure14(opts)
	case "15":
		tables = []*bench.Table{bench.Figure15(opts)}
	case "reorder":
		tables = []*bench.Table{bench.ReorderCost()}
	case "ablation":
		tables = bench.Ablations(opts)
	case "all":
		tables = bench.All(opts)
	default:
		fmt.Fprintf(os.Stderr, "unknown exhibit %q\n", *fig)
		flag.Usage()
		os.Exit(2)
	}
	for _, t := range tables {
		fmt.Println(t)
	}
	fmt.Printf("(regenerated in %.1fs, quick=%v, seed=%d)\n", time.Since(start).Seconds(), *quick, *seed)
}
