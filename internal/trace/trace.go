// Package trace is the always-on, per-node stage-tracing layer: every
// transaction moving through the pipeline leaves timestamped stage events
// (submit → order → raft-commit → seal → deliver → validate →
// commit/rescue) in a fixed-size lock-free ring buffer, cheap enough to
// stay enabled under production load. Clients drain the rings over the
// wire (MsgTraceReq) and join per-node timelines by TxID into end-to-end
// stage latencies — the observability substrate behind `sharpnet load
// -target-tps` and `sharpnet trace`.
//
// Determinism: the package is inside sharpvet's deterministic scope, but
// recording is strictly write-only side telemetry — nothing in the
// pipeline ever reads a ring or a timestamp back, so sealed output stays a
// pure function of the consensus stream. The single wall-clock read lives
// behind nowNS with the one allowed suppression.
package trace

import "time"

// Stage identifies one pipeline boundary of a transaction's life. The
// numeric order is the pipeline order; merge logic relies on it.
type Stage uint8

const (
	// StageSubmit: an ordering node received the endorsed transaction off
	// the wire (before consensus).
	StageSubmit Stage = 1 + iota
	// StageOrder: the scheduler admitted the transaction from the
	// consensus stream (Algorithm 2 arrival processing).
	StageOrder
	// StageRaftCommit: the replicated log acked the transaction
	// quorum-durable (Raft clusters only; absent on standalone orderers).
	StageRaftCommit
	// StageSeal: the transaction was sealed into a block, shadow verdicts
	// embedded.
	StageSeal
	// StageDeliver: the sealed block carrying the transaction arrived at a
	// peer's committer.
	StageDeliver
	// StageValidate: the peer derived the transaction's verdict.
	StageValidate
	// StageCommit: the peer applied the block — the transaction's fate is
	// settled on that replica.
	StageCommit
	// StageRescue: post-order re-execution rescued the transaction
	// (recorded alongside StageCommit for rescued verdicts).
	StageRescue

	stageEnd // count sentinel; keep last
)

// NumStages is the number of defined stages (array sizing).
const NumStages = int(stageEnd) - 1

var stageNames = [...]string{
	StageSubmit:     "submit",
	StageOrder:      "order",
	StageRaftCommit: "raft-commit",
	StageSeal:       "seal",
	StageDeliver:    "deliver",
	StageValidate:   "validate",
	StageCommit:     "commit",
	StageRescue:     "rescue",
}

func (s Stage) String() string {
	if s >= 1 && s < stageEnd {
		return stageNames[s]
	}
	return "unknown"
}

// Stages lists every defined stage in pipeline order.
func Stages() []Stage {
	out := make([]Stage, 0, NumStages)
	for s := StageSubmit; s < stageEnd; s++ {
		out = append(out, s)
	}
	return out
}

// Event is one recorded stage timestamp, decoded out of a ring.
type Event struct {
	// TxID is the transaction identifier (truncated to MaxTxIDLen bytes).
	TxID string
	// Stage is the pipeline boundary crossed.
	Stage Stage
	// Block is the sealed block number, 0 for pre-seal stages.
	Block uint64
	// WallNS is the wall-clock timestamp (UnixNano) at record time.
	WallNS int64
	// Seq is the ring ticket: the node-local total order of recording.
	Seq uint64
}

// Dump is one node's drained ring: the payload of a MsgTraceDump.
type Dump struct {
	// Node and Role identify the origin ("peer0"/"peer", raft addr/"orderer").
	Node string
	Role string
	// Recorded is the lifetime event count; Recorded - len(Events) events
	// were overwritten by wraparound (or torn away mid-drain).
	Recorded uint64
	// Events holds the surviving window, oldest first (by Seq).
	Events []Event
}

// Tracer is one node's always-on stage recorder: a named ring plus the
// wall-clock seam. All methods are safe on a nil receiver (records are
// dropped), so pipeline call sites stay unconditional.
type Tracer struct {
	node string
	role string
	ring *Ring
}

// New builds a Tracer over a fresh ring. capacity <= 0 selects
// DefaultRingSize; other values round up to a power of two.
func New(node, role string, capacity int) *Tracer {
	return &Tracer{node: node, role: role, ring: NewRing(capacity)}
}

// Record notes that txID crossed stage (block 0 for pre-seal stages),
// stamped with the current wall clock. Zero-allocation, lock-free; safe
// from any goroutine and on a nil Tracer.
func (t *Tracer) Record(txID string, stage Stage, block uint64) {
	if t == nil {
		return
	}
	t.ring.RecordAt(txID, stage, block, nowNS())
}

// Dump drains a consistent snapshot of the ring.
func (t *Tracer) Dump() Dump {
	if t == nil {
		return Dump{}
	}
	return Dump{
		Node:     t.node,
		Role:     t.role,
		Recorded: t.ring.Recorded(),
		Events:   t.ring.Snapshot(),
	}
}

// nowNS is the package's single wall-clock read. Timestamps feed
// operator-facing timelines only — never sealed output or any consensus
// decision.
func nowNS() int64 {
	//sharp:allow wallclock stage timestamps are write-only telemetry drained by operators; nothing deterministic reads them back
	return time.Now().UnixNano()
}
