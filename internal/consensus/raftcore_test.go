package consensus

import (
	"testing"
)

// newCore builds a three-member core for id with a persist recorder.
func newCore(t *testing.T, id string) *RaftCore {
	t.Helper()
	c, err := NewRaftCore(id, []string{"a", "b", "c"})
	if err != nil {
		t.Fatalf("NewRaftCore: %v", err)
	}
	return c
}

func TestRaftCoreMembershipValidation(t *testing.T) {
	if _, err := NewRaftCore("z", []string{"a", "b"}); err == nil {
		t.Fatal("expected error for id outside cluster")
	}
	if _, err := NewRaftCore("a", nil); err == nil {
		t.Fatal("expected error for empty cluster")
	}
}

func TestRaftCoreSingleNodeElectsImmediately(t *testing.T) {
	c, err := NewRaftCore("solo", []string{"solo"})
	if err != nil {
		t.Fatal(err)
	}
	c.StartElection()
	if c.Role() != RoleLeader {
		t.Fatalf("single-member cluster should self-elect, got %s", c.Role())
	}
	idx, err := c.Append(Envelope{SubmittedBy: "client"})
	if err != nil {
		t.Fatal(err)
	}
	if c.CommitIndex() != idx {
		t.Fatalf("single-member commit should be immediate: commit=%d idx=%d", c.CommitIndex(), idx)
	}
}

func TestRaftCoreElectionQuorum(t *testing.T) {
	a := newCore(t, "a")
	b := newCore(t, "b")

	req := a.StartElection()
	if a.Role() != RoleCandidate {
		t.Fatalf("expected candidate, got %s", a.Role())
	}
	if req.Term != 1 || req.CandidateID != "a" {
		t.Fatalf("unexpected vote request %+v", req)
	}

	resp := b.HandleVote(req)
	if !resp.Granted {
		t.Fatalf("fresh follower should grant: %+v", resp)
	}
	if won := a.HandleVoteResponse(resp); !won {
		t.Fatal("two votes of three should win the election")
	}
	if a.Role() != RoleLeader || a.LeaderID() != "a" {
		t.Fatalf("expected leader a, got %s leader=%q", a.Role(), a.LeaderID())
	}
	// Leader appended its term-start no-op.
	if a.LastIndex() != 1 || a.Entry(1).Term != 1 {
		t.Fatalf("expected no-op entry at index 1 term 1, got last=%d", a.LastIndex())
	}
}

func TestRaftCoreNoDoubleVotePerTerm(t *testing.T) {
	b := newCore(t, "b")
	r1 := b.HandleVote(VoteRequest{Term: 1, CandidateID: "a"})
	if !r1.Granted {
		t.Fatal("first vote should be granted")
	}
	r2 := b.HandleVote(VoteRequest{Term: 1, CandidateID: "c"})
	if r2.Granted {
		t.Fatal("must not vote twice in one term")
	}
	// Same candidate retransmitting is re-granted (idempotent).
	r3 := b.HandleVote(VoteRequest{Term: 1, CandidateID: "a"})
	if !r3.Granted {
		t.Fatal("retransmitted request from the voted-for candidate should be granted")
	}
	// A later term resets the vote.
	r4 := b.HandleVote(VoteRequest{Term: 2, CandidateID: "c"})
	if !r4.Granted {
		t.Fatal("new term should allow a fresh vote")
	}
}

func TestRaftCoreVoteRejectsStaleLog(t *testing.T) {
	b := newCore(t, "b")
	// b holds two entries from term 1.
	b.HandleAppend(AppendRequest{Term: 1, LeaderID: "a", Entries: []LogEntry{
		{Term: 1}, {Term: 1},
	}})
	// Candidate with an empty log is behind: rejected despite higher term.
	resp := b.HandleVote(VoteRequest{Term: 2, CandidateID: "c", LastIndex: 0, LastTerm: 0})
	if resp.Granted {
		t.Fatal("must not elect a candidate missing entries")
	}
	// The term was still adopted (stepDown), so a up-to-date candidate in the
	// same term can now win the vote.
	resp = b.HandleVote(VoteRequest{Term: 2, CandidateID: "a", LastIndex: 2, LastTerm: 1})
	if !resp.Granted {
		t.Fatalf("up-to-date candidate should be granted: %+v", resp)
	}
}

func TestRaftCoreVoteLastTermDominatesLength(t *testing.T) {
	b := newCore(t, "b")
	b.HandleAppend(AppendRequest{Term: 1, LeaderID: "a", Entries: []LogEntry{
		{Term: 1}, {Term: 1}, {Term: 1},
	}})
	// Shorter log but higher last term is MORE up to date.
	resp := b.HandleVote(VoteRequest{Term: 3, CandidateID: "c", LastIndex: 1, LastTerm: 2})
	if !resp.Granted {
		t.Fatal("higher last term should dominate log length")
	}
}

// electLeader runs a full two-of-three election and returns leader a with
// follower b attached at matching state.
func electLeader(t *testing.T) (a, b *RaftCore) {
	t.Helper()
	a, b = newCore(t, "a"), newCore(t, "b")
	if won := a.HandleVoteResponse(b.HandleVote(a.StartElection())); !won {
		t.Fatal("election should succeed")
	}
	return a, b
}

// replicate drains one AppendEntries round trip from leader to follower and
// feeds the response back. Returns the follower's response.
func replicate(a, b *RaftCore) AppendResponse {
	resp := b.HandleAppend(a.AppendRequestFor("b"))
	a.HandleAppendResponse(resp)
	return resp
}

func TestRaftCoreReplicationAndCommit(t *testing.T) {
	a, b := electLeader(t)
	idx, err := a.Append(Envelope{SubmittedBy: "client"})
	if err != nil {
		t.Fatal(err)
	}
	if a.CommitIndex() != 0 {
		t.Fatalf("nothing should commit before a follower acks, commit=%d", a.CommitIndex())
	}
	resp := replicate(a, b)
	if !resp.Success {
		t.Fatalf("append should succeed: %+v", resp)
	}
	if a.CommitIndex() != idx {
		t.Fatalf("majority ack should commit %d, commit=%d", idx, a.CommitIndex())
	}
	// Commit index propagates to the follower on the next round.
	replicate(a, b)
	if b.CommitIndex() != idx {
		t.Fatalf("follower commit should follow leader: %d != %d", b.CommitIndex(), idx)
	}
	if b.Entry(idx).Env.SubmittedBy != "client" {
		t.Fatal("follower replicated wrong entry")
	}
}

func TestRaftCoreFollowerRefusesAppendWithRedirect(t *testing.T) {
	a, b := electLeader(t)
	replicate(a, b) // b learns a is leader
	_, err := b.Append(Envelope{})
	nl, ok := err.(ErrNotLeader)
	if !ok {
		t.Fatalf("expected ErrNotLeader, got %v", err)
	}
	if nl.LeaderID != "a" {
		t.Fatalf("redirect should name the leader, got %q", nl.LeaderID)
	}
}

func TestRaftCoreCatchUpFromEmptyLog(t *testing.T) {
	a, _ := electLeader(t)
	for i := 0; i < 600; i++ { // > maxEntriesPerAppend to force batching
		if _, err := a.Append(Envelope{SubmittedBy: "x"}); err != nil {
			t.Fatal(err)
		}
	}
	// Fresh replica (a restarted node) joins with an empty log.
	c := newCore(t, "c")
	rounds := 0
	for {
		resp := c.HandleAppend(a.AppendRequestFor("c"))
		a.HandleAppendResponse(resp)
		rounds++
		if rounds > 100 {
			t.Fatal("catch-up did not converge")
		}
		if resp.Success && resp.MatchIndex == a.LastIndex() {
			break
		}
	}
	if c.LastIndex() != a.LastIndex() {
		t.Fatalf("catch-up incomplete: %d != %d", c.LastIndex(), a.LastIndex())
	}
	// The backoff hint makes the first round land at the follower's last
	// index, so catch-up is O(log/batch), not O(log) decrements.
	want := 1 + (int(a.LastIndex())+maxEntriesPerAppend-1)/maxEntriesPerAppend
	if rounds > want+2 {
		t.Fatalf("catch-up took %d rounds, expected about %d", rounds, want)
	}
	// With both followers caught up, everything commits.
	if a.CommitIndex() != a.LastIndex() {
		t.Fatalf("commit should reach the end: %d != %d", a.CommitIndex(), a.LastIndex())
	}
}

func TestRaftCoreConflictTruncation(t *testing.T) {
	// b holds uncommitted entries from a dead leader's term 1.
	b := newCore(t, "b")
	b.HandleAppend(AppendRequest{Term: 1, LeaderID: "x", Entries: []LogEntry{
		{Term: 1, Env: Envelope{SubmittedBy: "stale1"}},
		{Term: 1, Env: Envelope{SubmittedBy: "stale2"}},
	}})
	// New leader in term 3 replicates a different suffix from index 2.
	resp := b.HandleAppend(AppendRequest{
		Term: 3, LeaderID: "a", PrevIndex: 1, PrevTerm: 1,
		Entries: []LogEntry{{Term: 3, Env: Envelope{SubmittedBy: "fresh"}}},
	})
	if !resp.Success {
		t.Fatalf("append should succeed: %+v", resp)
	}
	if b.LastIndex() != 2 || b.Entry(2).Env.SubmittedBy != "fresh" {
		t.Fatalf("conflicting suffix should be replaced, got last=%d", b.LastIndex())
	}
	if b.Entry(1).Env.SubmittedBy != "stale1" {
		t.Fatal("matching prefix must be preserved")
	}
}

func TestRaftCoreDuplicateAppendIsIdempotent(t *testing.T) {
	a, b := electLeader(t)
	if _, err := a.Append(Envelope{SubmittedBy: "once"}); err != nil {
		t.Fatal(err)
	}
	req := a.AppendRequestFor("b")
	r1 := b.HandleAppend(req)
	r2 := b.HandleAppend(req) // retransmitted frame
	if !r1.Success || !r2.Success || r1.MatchIndex != r2.MatchIndex {
		t.Fatalf("duplicate append must be idempotent: %+v vs %+v", r1, r2)
	}
	if b.LastIndex() != a.LastIndex() {
		t.Fatalf("duplicate must not grow the log: %d != %d", b.LastIndex(), a.LastIndex())
	}
}

func TestRaftCoreLogMatchingRejectsGap(t *testing.T) {
	b := newCore(t, "b")
	// Leader assumes b has 5 entries; b is empty.
	resp := b.HandleAppend(AppendRequest{
		Term: 1, LeaderID: "a", PrevIndex: 5, PrevTerm: 1,
		Entries: []LogEntry{{Term: 1}},
	})
	if resp.Success {
		t.Fatal("append beyond the log must be rejected")
	}
	if resp.MatchIndex != 0 {
		t.Fatalf("hint should be the follower's last index 0, got %d", resp.MatchIndex)
	}
}

func TestRaftCoreStaleTermRejected(t *testing.T) {
	b := newCore(t, "b")
	b.HandleVote(VoteRequest{Term: 5, CandidateID: "c"})
	resp := b.HandleAppend(AppendRequest{Term: 3, LeaderID: "a"})
	if resp.Success {
		t.Fatal("stale-term append must be rejected")
	}
	if resp.Term != 5 {
		t.Fatalf("response should carry the newer term 5, got %d", resp.Term)
	}
	vr := b.HandleVote(VoteRequest{Term: 4, CandidateID: "a"})
	if vr.Granted {
		t.Fatal("stale-term vote must be rejected")
	}
}

func TestRaftCoreLeaderStepsDownOnHigherTerm(t *testing.T) {
	a, b := electLeader(t)
	if _, err := a.Append(Envelope{}); err != nil {
		t.Fatal(err)
	}
	// A response carrying a higher term (partition healed elsewhere).
	a.HandleAppendResponse(AppendResponse{From: "c", Term: 9})
	if a.Role() != RoleFollower || a.Term() != 9 {
		t.Fatalf("leader must step down: role=%s term=%d", a.Role(), a.Term())
	}
	if _, err := a.Append(Envelope{}); err == nil {
		t.Fatal("stepped-down leader must refuse appends")
	}
	_ = b
}

func TestRaftCoreCandidateConcedesToLeader(t *testing.T) {
	b := newCore(t, "b")
	b.StartElection() // term 1 candidate
	resp := b.HandleAppend(AppendRequest{Term: 1, LeaderID: "a"})
	if !resp.Success {
		t.Fatalf("same-term heartbeat should be accepted: %+v", resp)
	}
	if b.Role() != RoleFollower || b.LeaderID() != "a" {
		t.Fatalf("candidate must concede: role=%s leader=%q", b.Role(), b.LeaderID())
	}
}

func TestRaftCoreNoCommitOfPriorTermWithoutCurrentEntry(t *testing.T) {
	// The §5.4.2 scenario: a leader must not commit a prior-term entry by
	// counting replicas alone. Here the no-op covers it: once the new term's
	// no-op replicates, everything beneath commits transitively.
	a, b := electLeader(t) // term 1, no-op at index 1
	if _, err := a.Append(Envelope{SubmittedBy: "t1"}); err != nil {
		t.Fatal(err)
	}
	replicate(a, b) // commit through index 2
	// a wins a new election in term 2 without having replicated anything new.
	a.stepDown(1) // simulate losing leadership
	if won := a.HandleVoteResponse(b.HandleVote(a.StartElection())); !won {
		t.Fatal("re-election should succeed")
	}
	// Fresh term's no-op is appended but nothing new committed yet on the
	// new leader beyond what was already durable.
	before := a.CommitIndex()
	resp := replicate(a, b)
	if !resp.Success {
		t.Fatalf("replication should succeed: %+v", resp)
	}
	if a.CommitIndex() <= before {
		t.Fatal("replicating the new-term no-op should advance commit")
	}
	if a.CommitIndex() != a.LastIndex() {
		t.Fatalf("no-op commit should carry prior entries: %d != %d", a.CommitIndex(), a.LastIndex())
	}
}

func TestRaftCorePersistCalledOnTermAndVoteChanges(t *testing.T) {
	b := newCore(t, "b")
	var persisted []struct {
		term uint64
		vote string
	}
	b.Persist = func(term uint64, vote string) {
		persisted = append(persisted, struct {
			term uint64
			vote string
		}{term, vote})
	}
	b.HandleVote(VoteRequest{Term: 2, CandidateID: "a"})
	if len(persisted) == 0 {
		t.Fatal("granting a vote must persist")
	}
	last := persisted[len(persisted)-1]
	if last.term != 2 || last.vote != "a" {
		t.Fatalf("persisted wrong state: %+v", last)
	}
	// Restore round-trips.
	c := newCore(t, "c")
	c.Restore(last.term, last.vote)
	if c.Term() != 2 {
		t.Fatalf("restore: term=%d", c.Term())
	}
	// After restore, c must still refuse a conflicting vote in term 2.
	if r := c.HandleVote(VoteRequest{Term: 2, CandidateID: "b"}); r.Granted {
		t.Fatal("restored vote must prevent double voting")
	}
}

func TestRaftCoreBehindTracksFollowerCursor(t *testing.T) {
	a, b := electLeader(t)
	for i := 0; i < 3; i++ {
		if _, err := a.Append(Envelope{}); err != nil {
			t.Fatal(err)
		}
	}
	if !a.Behind("b") {
		t.Fatal("follower with pending entries should be behind")
	}
	replicate(a, b)
	if a.Behind("b") {
		t.Fatal("caught-up follower should not be behind")
	}
}
