package bench

import (
	"fmt"
	"strings"
	"testing"
)

func fmtSscan(s string, v *float64) (int, error) { return fmt.Sscan(s, v) }

func TestTableRendering(t *testing.T) {
	tbl := &Table{Title: "demo", Columns: []string{"a", "bb"}, Comment: "note"}
	tbl.AddRow("x", 1.5)
	tbl.AddRow(10, "y")
	s := tbl.String()
	for _, want := range []string{"== demo ==", "-- note", "a", "bb", "1.5", "10"} {
		if !strings.Contains(s, want) {
			t.Errorf("render missing %q:\n%s", want, s)
		}
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	statuses := Table1Statuses()

	// Vanilla Fabric: Txn1 not allowed, only Txn3 commits (Table 1 row 1).
	fabric := statuses["Fabric"]
	if fabric["Txn1"] != "N.A." {
		t.Errorf("Fabric Txn1 = %q want N.A.", fabric["Txn1"])
	}
	for id, want := range map[string]string{"Txn2": "abort", "Txn3": "COMMIT", "Txn4": "abort", "Txn5": "abort"} {
		if fabric[id] != want {
			t.Errorf("Fabric %s = %q want %q", id, fabric[id], want)
		}
	}

	// Fabric++: Txn1 and Txn2 abort; exactly two of {Txn3,Txn4,Txn5}
	// commit (the paper's heuristic saves {Txn4,Txn5}; ours saves an
	// equally sized set — the count is the invariant).
	pp := statuses["Fabric++"]
	if pp["Txn1"] != "abort" || pp["Txn2"] != "abort" {
		t.Errorf("Fabric++ Txn1/Txn2 = %q/%q want abort/abort", pp["Txn1"], pp["Txn2"])
	}
	committed := 0
	for _, id := range []string{"Txn3", "Txn4", "Txn5"} {
		if pp[id] == "COMMIT" {
			committed++
		}
	}
	if committed != 2 {
		t.Errorf("Fabric++ committed %d of Txn3-5, want 2 (%v)", committed, pp)
	}

	// FabricSharp: the snapshot-consistent Txn1 commits, plus two more —
	// strictly better than both baselines.
	sharp := statuses["Fabric#"]
	if sharp["Txn1"] != "COMMIT" {
		t.Errorf("Fabric# Txn1 = %q want COMMIT", sharp["Txn1"])
	}
	sharpCommitted := 0
	for _, id := range []string{"Txn1", "Txn2", "Txn3", "Txn4", "Txn5"} {
		if sharp[id] == "COMMIT" {
			sharpCommitted++
		}
	}
	if sharpCommitted != 3 {
		t.Errorf("Fabric# committed %d, want 3 (%v)", sharpCommitted, sharp)
	}
}

func TestReorderCostScaling(t *testing.T) {
	tbl := ReorderCost()
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Fabric++'s cost must grow superlinearly relative to Focc-l's
	// (the Section 5.3 observation).
	if tbl.Rows[0][1] == "" || tbl.Rows[5][1] == "" {
		t.Fatal("missing measurements")
	}
}

func TestFigure1ShapeQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	tbl := Figure1(Options{Quick: true, Seed: 1})
	if len(tbl.Rows) != 7 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// No-op workload: effective == raw (nothing aborts).
	if tbl.Rows[0][1] != tbl.Rows[0][2] {
		t.Errorf("no-op raw %s != effective %s", tbl.Rows[0][1], tbl.Rows[0][2])
	}
	// Effective throughput at θ=1.2 is below θ=0.2's.
	var lo, hi float64
	if _, err := sscan(tbl.Rows[1][2], &lo); err != nil {
		t.Fatal(err)
	}
	if _, err := sscan(tbl.Rows[6][2], &hi); err != nil {
		t.Fatal(err)
	}
	if hi >= lo {
		t.Errorf("effective tps did not drop with skew: θ=0.2 %.1f vs θ=1.2 %.1f", lo, hi)
	}
}

func sscan(s string, v *float64) (int, error) {
	return fmtSscan(s, v)
}
