package bench

import (
	"fmt"

	"fabricsharp/internal/network"
	"fabricsharp/internal/scenario"
	"fabricsharp/internal/sched"
)

// ScenarioMatrix runs one registered scenario across all five systems on the
// simulator and checks the scenario's own invariant against each run's final
// state — the quick way to compare the schedulers on a conflict structure the
// paper's figures do not cover. The returned error reports the first
// invariant violation (the table still carries every row).
func ScenarioMatrix(o Options, name string) (*Table, error) {
	sc, ok := scenario.Get(name)
	if !ok {
		return nil, fmt.Errorf("bench: unknown scenario %q (have %v)", name, scenario.Names())
	}
	t := &Table{
		Title:   fmt.Sprintf("Scenario %q across the five systems", name),
		Columns: []string{"system", "effective tps", "raw tps", "abort %", "invariant"},
		Comment: sc.Doc,
	}
	// Generic tuning across heterogeneous scenarios: pool sizes stay at each
	// scenario's default; skew and hot ratios take the Table 2 defaults.
	params := scenario.Params{
		Theta:    0.5,
		ReadHot:  Params.Defaults.ReadHot,
		WriteHot: Params.Defaults.WriteHot,
	}
	var firstErr error
	for i, system := range sched.Systems() {
		res := run(network.Config{
			System:         system,
			Scenario:       name,
			ScenarioParams: params,
			Seed:           o.Seed,
			Rng:            o.Rng(o.Seed*443 + int64(i)),
			Duration:       o.duration(),
			RequestRate:    Params.Defaults.RequestRate,
			BlockSize:      Params.Defaults.BlockSize,
			MaxSpan:        Params.Defaults.MaxSpan,
		})
		verdict := "ok"
		if err := sc.CheckInvariant(res.State, params); err != nil {
			verdict = err.Error()
			if firstErr == nil {
				firstErr = fmt.Errorf("bench: scenario %q on %s: %w", name, system, err)
			}
		}
		t.AddRow(systemLabel(system), res.EffectiveTPS, res.RawTPS,
			fmt.Sprintf("%.1f", 100*res.AbortRate()), verdict)
	}
	return t, firstErr
}

// ScenarioMatrixAll runs ScenarioMatrix for the named scenario, or for every
// registered scenario when name is empty.
func ScenarioMatrixAll(o Options, name string) ([]*Table, error) {
	names := []string{name}
	if name == "" {
		names = scenario.Names()
	}
	var tables []*Table
	var firstErr error
	for _, n := range names {
		t, err := ScenarioMatrix(o, n)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if t != nil {
			tables = append(tables, t)
		}
	}
	return tables, firstErr
}
