package ledger

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"fabricsharp/internal/kvstore"
	"fabricsharp/internal/protocol"
)

func tx(id string) *protocol.Transaction {
	return &protocol.Transaction{ID: protocol.TxID(id), Contract: "kv", Function: "put", Args: []string{id}}
}

func txs(ids ...string) []*protocol.Transaction {
	out := make([]*protocol.Transaction, len(ids))
	for i, id := range ids {
		out[i] = tx(id)
	}
	return out
}

func TestSealAndLinkage(t *testing.T) {
	c, err := NewChain(nil)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := c.Seal(txs("a", "b"), nil)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := c.Seal(txs("c"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if b1.Header.Number != 1 || b2.Header.Number != 2 {
		t.Fatalf("numbers %d,%d", b1.Header.Number, b2.Header.Number)
	}
	if !bytes.Equal(b2.Header.PrevHash, b1.Hash()) {
		t.Error("prev hash not linked")
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
	if h, ok := c.Height(); !ok || h != 2 {
		t.Errorf("height %d,%v", h, ok)
	}
}

func TestAppendRejectsSkipsAndForks(t *testing.T) {
	c, _ := NewChain(nil)
	b1, _ := c.Seal(txs("a"), nil)

	skip := &Block{Header: Header{Number: 3, PrevHash: b1.Hash(), DataHash: DataHash(nil)}}
	if err := c.Append(skip); err == nil {
		t.Error("skipping block accepted")
	}
	fork := &Block{Header: Header{Number: 2, PrevHash: []byte("bogus"), DataHash: DataHash(nil)}}
	if err := c.Append(fork); err == nil {
		t.Error("forked block accepted")
	}
	tampered := &Block{
		Header:       Header{Number: 2, PrevHash: b1.Hash(), DataHash: DataHash(txs("x"))},
		Transactions: txs("y"), // content does not match data hash
	}
	if err := c.Append(tampered); err == nil {
		t.Error("tampered block accepted")
	}
}

func TestNoCreation(t *testing.T) {
	// A block whose DataHash was computed over different transactions than
	// it carries must be rejected — transactions cannot be invented or
	// swapped after sealing.
	c, _ := NewChain(nil)
	b, _ := c.Seal(txs("real"), nil)
	b.Transactions = txs("forged")
	c2, _ := NewChain(nil)
	blk := &Block{Header: b.Header, Transactions: b.Transactions}
	if err := c2.Append(blk); err == nil {
		t.Error("block with forged content accepted")
	}
}

func TestDataHashDeterministicAndOrderSensitive(t *testing.T) {
	a := DataHash(txs("t1", "t2", "t3"))
	b := DataHash(txs("t1", "t2", "t3"))
	if !bytes.Equal(a, b) {
		t.Error("data hash not deterministic")
	}
	if bytes.Equal(a, DataHash(txs("t2", "t1", "t3"))) {
		t.Error("data hash must be order sensitive (the reordering result is sealed)")
	}
	if bytes.Equal(DataHash(nil), DataHash(txs("t1"))) {
		t.Error("empty and singleton hashes collide")
	}
}

func TestMerkleOddCounts(t *testing.T) {
	prop := func(n uint8) bool {
		count := int(n%9) + 1
		ids := make([]string, count)
		for i := range ids {
			ids[i] = fmt.Sprintf("tx%d", i)
		}
		h1 := DataHash(txs(ids...))
		h2 := DataHash(txs(ids...))
		return bytes.Equal(h1, h2) && len(h1) == 32
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValidationMetadata(t *testing.T) {
	c, _ := NewChain(nil)
	b, _ := c.Seal(txs("a", "b", "c"), nil)
	codes := []protocol.ValidationCode{protocol.Valid, protocol.MVCCConflict, protocol.Valid}
	if err := c.SetValidation(b.Header.Number, codes); err != nil {
		t.Fatal(err)
	}
	got, _ := c.Get(1)
	if got.ValidCount() != 2 {
		t.Errorf("ValidCount = %d want 2", got.ValidCount())
	}
	if err := c.SetValidation(1, codes[:1]); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := c.SetValidation(9, codes); err == nil {
		t.Error("missing block accepted")
	}
}

func TestSealWithValidationLengthMismatch(t *testing.T) {
	c, _ := NewChain(nil)
	if _, err := c.Seal(txs("a"), []protocol.ValidationCode{protocol.Valid, protocol.Valid}); err == nil {
		t.Error("seal with mismatched validation metadata accepted")
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	kv, err := kvstore.Open(kvstore.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewChain(kv)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := c.Seal(txs(fmt.Sprintf("tx%d", i)), []protocol.ValidationCode{protocol.Valid}); err != nil {
			t.Fatal(err)
		}
	}
	tip := c.TipHash()
	if err := kv.Close(); err != nil {
		t.Fatal(err)
	}

	kv2, err := kvstore.Open(kvstore.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer kv2.Close()
	c2, err := NewChain(kv2)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Len() != 5 {
		t.Fatalf("reloaded %d blocks want 5", c2.Len())
	}
	if !bytes.Equal(c2.TipHash(), tip) {
		t.Error("tip hash changed across reload")
	}
	if err := c2.Verify(); err != nil {
		t.Fatal(err)
	}
	// Chain continues from the reloaded tip.
	if _, err := c2.Seal(txs("more"), []protocol.ValidationCode{protocol.Valid}); err != nil {
		t.Fatal(err)
	}
	if h, _ := c2.Height(); h != 6 {
		t.Errorf("height after reload+seal = %d", h)
	}
}

func TestGetAndTip(t *testing.T) {
	c, _ := NewChain(nil)
	if _, ok := c.Tip(); ok {
		t.Error("empty chain has a tip")
	}
	if _, ok := c.Get(1); ok {
		t.Error("empty chain returned a block")
	}
	c.Seal(txs("a"), nil)
	c.Seal(txs("b"), nil)
	if b, ok := c.Get(2); !ok || b.Transactions[0].ID != "b" {
		t.Error("Get(2) wrong")
	}
	if _, ok := c.Get(3); ok {
		t.Error("Get past tip succeeded")
	}
	if b, ok := c.Tip(); !ok || b.Header.Number != 2 {
		t.Error("Tip wrong")
	}
}

func TestForEachOrder(t *testing.T) {
	c, _ := NewChain(nil)
	for i := 0; i < 4; i++ {
		c.Seal(txs(fmt.Sprintf("t%d", i)), nil)
	}
	var nums []uint64
	c.ForEach(func(b *Block) bool {
		nums = append(nums, b.Header.Number)
		return b.Header.Number < 3 // early stop
	})
	if fmt.Sprint(nums) != "[1 2 3]" {
		t.Errorf("ForEach order/stop wrong: %v", nums)
	}
}

func TestAgreementTipHashEquality(t *testing.T) {
	// Two replicas sealing the same transaction stream agree byte-for-byte.
	a, _ := NewChain(nil)
	b, _ := NewChain(nil)
	for i := 0; i < 10; i++ {
		batch := txs(fmt.Sprintf("x%d", i), fmt.Sprintf("y%d", i))
		a.Seal(batch, nil)
		b.Seal(batch, nil)
	}
	if !bytes.Equal(a.TipHash(), b.TipHash()) {
		t.Error("replicas diverged on identical input")
	}
}
