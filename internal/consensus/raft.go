package consensus

import (
	"fmt"
	"sync"
)

// Raft is a crash-fault-tolerant replicated log providing the same
// totally-ordered broadcast Service as Kafka, built from an explicit
// leader/follower replication protocol: submissions go to the leader, the
// leader replicates entries to followers and commits once a majority has
// acknowledged, and subscribers read the committed prefix. It models the
// Raft-based ordering service that replaced Kafka in later Fabric versions;
// the schedulers are oblivious to which Service backs them (tested by
// running the same workload over both).
//
// Scope: log replication, majority commit, leader failover to the most
// up-to-date replica, and crash/restart of followers. Elections are
// deterministic (lowest-ID candidate with the longest log wins) rather than
// randomized-timeout driven — the properties the blockchain relies on are
// the log ones, not liveness under partition.
type Raft struct {
	mu     sync.Mutex
	cond   *sync.Cond
	nodes  []*raftNode
	leader int
	// committed is the commit index (length of the durable prefix).
	committed int
	closed    bool
}

type raftNode struct {
	id    int
	log   []Envelope
	alive bool
}

// NewRaft creates a cluster of n replicas (n >= 1); node 0 starts as leader.
func NewRaft(n int) *Raft {
	if n < 1 {
		panic("consensus: raft needs at least one node")
	}
	r := &Raft{}
	r.cond = sync.NewCond(&r.mu)
	for i := 0; i < n; i++ {
		r.nodes = append(r.nodes, &raftNode{id: i, alive: true})
	}
	return r
}

// Submit implements Service: append to the leader, replicate, commit on
// majority.
func (r *Raft) Submit(env Envelope) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return fmt.Errorf("consensus: service closed")
	}
	leader := r.nodes[r.leader]
	if !leader.alive {
		return fmt.Errorf("consensus: leader %d is down (call Elect)", r.leader)
	}
	leader.log = append(leader.log, env)
	// Replicate to every live follower.
	acks := 1
	for _, n := range r.nodes {
		if n == leader || !n.alive {
			continue
		}
		// Followers may be behind (they were down): catch them up.
		n.log = append(n.log[:min(len(n.log), len(leader.log)-1)], leader.log[min(len(n.log), len(leader.log)-1):]...)
		acks++
	}
	if acks*2 > len(r.nodes) {
		r.committed = len(leader.log)
		r.cond.Broadcast()
		return nil
	}
	// No majority: the entry stays uncommitted; report the stall.
	return fmt.Errorf("consensus: no quorum (%d/%d alive)", acks, len(r.nodes))
}

// Crash takes a node down. Crashing the leader stalls submissions until
// Elect promotes a replacement.
func (r *Raft) Crash(id int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nodes[id].alive = false
}

// Restart brings a node back; it will be caught up on the next submission.
func (r *Raft) Restart(id int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nodes[id].alive = true
}

// Elect promotes the most up-to-date live node (ties broken by lowest ID) —
// Raft's leader-completeness property guarantees it holds every committed
// entry.
func (r *Raft) Elect() (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	best := -1
	for _, n := range r.nodes {
		if !n.alive {
			continue
		}
		if best == -1 || len(n.log) > len(r.nodes[best].log) {
			best = n.id
		}
	}
	if best == -1 {
		return -1, fmt.Errorf("consensus: no live node")
	}
	r.leader = best
	// A new leader can only have >= committed entries (majority intersection);
	// its log defines the authoritative suffix.
	if len(r.nodes[best].log) < r.committed {
		return -1, fmt.Errorf("consensus: elected leader misses committed entries — quorum invariant broken")
	}
	return best, nil
}

// Leader returns the current leader's ID.
func (r *Raft) Leader() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.leader
}

// Subscribe implements Service: deliver the committed prefix and its
// extension, exactly like the Kafka subscriber.
func (r *Raft) Subscribe() (<-chan Sequenced, func()) {
	ch := make(chan Sequenced, 128)
	done := make(chan struct{})
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			close(done)
			r.mu.Lock()
			r.cond.Broadcast()
			r.mu.Unlock()
		})
	}
	go func() {
		defer close(ch)
		next := 0
		for {
			r.mu.Lock()
			for next >= r.committed && !r.closed {
				select {
				case <-done:
					r.mu.Unlock()
					return
				default:
				}
				r.cond.Wait()
			}
			if next >= r.committed && r.closed {
				r.mu.Unlock()
				return
			}
			env := r.nodes[r.leader].log[next]
			r.mu.Unlock()
			select {
			case ch <- Sequenced{Offset: uint64(next), Env: env}:
				next++
			case <-done:
				return
			}
		}
	}()
	return ch, cancel
}

// Close implements Service.
func (r *Raft) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closed = true
	r.cond.Broadcast()
}

// Len returns the committed log length.
func (r *Raft) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.committed
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

var _ Service = (*Raft)(nil)
var _ Service = (*Kafka)(nil)
