package validation

import (
	"sync"
	"sync/atomic"

	"fabricsharp/internal/protocol"
	"fabricsharp/internal/seqno"
	"fabricsharp/internal/statedb"
)

// VersionSource resolves a key's latest committed version. It is the
// value-free slice of the state database that the verdict logic actually
// consumes: endorsement and MVCC checks never read values, only versions.
// Both the peers' full state (via DBVersions) and the orderers' ShadowState
// implement it, so one verdict function serves both sides of the pipeline.
type VersionSource interface {
	// Version returns the latest version of key, and false when the key is
	// absent (never written, or deleted).
	Version(key string) (seqno.Seq, bool)
}

// dbVersions adapts a statedb.DB's latest-version view to VersionSource.
type dbVersions struct{ db *statedb.DB }

// DBVersions exposes db's latest committed versions as a VersionSource.
func DBVersions(db *statedb.DB) VersionSource { return dbVersions{db: db} }

func (s dbVersions) Version(key string) (seqno.Seq, bool) {
	vv, ok := s.db.Get(key)
	if !ok {
		return seqno.Seq{}, false
	}
	return vv.Version, true
}

// ShadowState is a value-free replica of the committed version state: for
// every live key, the (block, position) version of its last valid write;
// deletes are tombstoned exactly like the state database reports them
// (absent). Orderers maintain one per replica and advance it with the
// verdicts ComputeVerdicts derives at each cut, so commit feedback becomes a
// pure function of the consensus stream — no peer, no timing, no values.
//
// A ShadowState is confined to its orderer goroutine; it is not safe for
// concurrent use.
type ShadowState struct {
	entries map[string]shadowEntry
	height  uint64
}

type shadowEntry struct {
	version seqno.Seq
	deleted bool
}

// NewShadowState returns an empty shadow (the genesis version state).
func NewShadowState() *ShadowState {
	return &ShadowState{entries: map[string]shadowEntry{}}
}

// Version implements VersionSource.
func (s *ShadowState) Version(key string) (seqno.Seq, bool) {
	e, ok := s.entries[key]
	if !ok || e.deleted {
		return seqno.Seq{}, false
	}
	return e.version, true
}

// Apply folds one sealed block's verdicts into the shadow: the writes of
// every valid transaction land at version (block, position), deletes as
// tombstones — mirroring what statedb.ApplyBlock will do on the peers with
// the same codes. codes[i] corresponds to txs[i].
func (s *ShadowState) Apply(block uint64, txs []*protocol.Transaction, codes []protocol.ValidationCode) {
	for i, tx := range txs {
		if codes[i] != protocol.Valid {
			continue
		}
		ver := seqno.Commit(block, uint32(i+1))
		for _, w := range tx.RWSet.Writes {
			s.entries[w.Key] = shadowEntry{version: ver, deleted: w.Delete}
		}
	}
	s.height = block
}

// Height returns the last applied block number.
func (s *ShadowState) Height() uint64 { return s.height }

// Len returns the number of tracked keys, tombstones included (tests,
// metrics).
func (s *ShadowState) Len() int { return len(s.entries) }

// ComputeVerdicts derives the validation codes for one block of ordered
// transactions against base — the shared, sequential verdict function of
// the whole repository. ValidateAndCommit wraps it for the peer reference
// path, commit.ValidateBlock is asserted byte-identical to it, and every
// orderer runs it over its ShadowState right after a cut, so the codes a
// block carries out of ordering equal the codes the peers compute during
// validation by construction, not by luck.
func ComputeVerdicts(base VersionSource, block uint64, txs []*protocol.Transaction, opts Options) []protocol.ValidationCode {
	return ComputeVerdictsPrechecked(base, block, txs, opts, PrecheckEndorsements(txs, opts, 1))
}

// PrecheckEndorsements runs opts' endorsement policy over every transaction
// on up to `workers` goroutines and returns the failure mask
// ComputeVerdictsPrechecked consumes, or nil when the options disable
// endorsement checking. Each verdict is an independent pure function of its
// transaction, so the mask is deterministic regardless of scheduling — this
// is how the orderers keep the dominant CPU cost of shadow validation
// (ed25519 verification) off the serial part of the cut path.
func PrecheckEndorsements(txs []*protocol.Transaction, opts Options, workers int) []bool {
	if opts.MSP == nil || opts.Policy == nil {
		return nil
	}
	failed := make([]bool, len(txs))
	check := func(i int) {
		failed[i] = opts.MSP.CheckEndorsements(txs[i], opts.Policy) != nil
	}
	if workers > len(txs) {
		workers = len(txs)
	}
	if workers <= 1 {
		for i := range txs {
			check(i)
		}
		return failed
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(txs) {
					return
				}
				check(i)
			}
		}()
	}
	wg.Wait()
	return failed
}

// ComputeVerdictsPrechecked is ComputeVerdicts with the endorsement phase
// already done: endorseFailed[i], when the slice is non-nil, is the
// (order-independent) endorsement verdict for txs[i]. The sequential pass
// here is only the overlay-coupled MVCC rule.
func ComputeVerdictsPrechecked(base VersionSource, block uint64, txs []*protocol.Transaction, opts Options, endorseFailed []bool) []protocol.ValidationCode {
	codes := make([]protocol.ValidationCode, len(txs))
	overlay := NewOverlay()
	current := func(key string) (seqno.Seq, bool) {
		return overlay.Version(base, key)
	}
	for i, tx := range txs {
		if endorseFailed != nil && endorseFailed[i] {
			codes[i] = protocol.EndorsementFailure
			continue
		}
		if opts.MVCC && !ReadsFresh(tx, current) {
			codes[i] = protocol.MVCCConflict
			continue
		}
		codes[i] = protocol.Valid
		overlay.Record(seqno.Commit(block, uint32(i+1)), tx.RWSet.Writes)
	}
	return codes
}
