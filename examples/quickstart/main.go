// Quickstart: boot an in-process FabricSharp network, submit a few
// transactions through the full execute-order-validate pipeline, query the
// committed state, and show the abort taxonomy on a conflicting pair.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	fabricsharp "fabricsharp"
)

func main() {
	// A 4-peer, 2-orderer network running the paper's scheduler. The
	// second orderer replicates the deterministic reordering — both seal
	// identical chains.
	net, err := fabricsharp.NewNetwork(fabricsharp.NetworkOptions{
		System:       fabricsharp.SystemSharp,
		BlockSize:    10,
		BlockTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer net.Close()

	alice, err := net.NewClient("alice")
	if err != nil {
		log.Fatal(err)
	}

	// Execution: alice's proposal is simulated on an endorsing peer, which
	// records the read/write set and signs it. Ordering: the endorsed
	// transaction flows through consensus into the Sharp scheduler.
	// Validation: peers commit it without re-checking concurrency — the
	// ordering phase already guaranteed serializability.
	res, err := alice.Submit("kv", "put", "greeting", "hello, blockchain")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("put committed in block %d (%s)\n", res.Block, res.Code)

	val, err := alice.Query("kv", "get", "greeting")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query returned %q\n", val)

	// Increment a counter a few times — read-modify-writes serialize.
	for i := 0; i < 5; i++ {
		if _, err := alice.Submit("kv", "rmw", "visits", "1"); err != nil {
			log.Fatal(err)
		}
	}
	visits, _ := alice.Query("kv", "get", "visits")
	fmt.Printf("visits counter: %s\n", visits)

	fmt.Printf("chain height: %d blocks; peers agree: %v\n",
		net.Height(), string(net.Peer(0).State().StateFingerprint()) == string(net.Peer(1).State().StateFingerprint()))
}
