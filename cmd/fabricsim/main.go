// Command fabricsim runs one simulated EOV-pipeline experiment with explicit
// parameters and prints the measurements — the single-run front end to the
// harness behind cmd/benchall.
//
// Example:
//
//	fabricsim -system fabric# -rate 700 -block-size 100 -read-hot 0.3 -duration 20
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"fabricsharp/internal/network"
	"fabricsharp/internal/scenario"
	"fabricsharp/internal/sched"
	"fabricsharp/internal/sim"
)

func main() {
	system := flag.String("system", "fabric#", "fabric | fabric++ | fabric# | focc-s | focc-l")
	profile := flag.String("profile", "fabric", "fabric | fastfabric")
	rate := flag.Float64("rate", 700, "request rate (tx/s)")
	blockSize := flag.Int("block-size", 100, "transactions per block")
	duration := flag.Float64("duration", 20, "measurement window (virtual seconds)")
	readHot := flag.Float64("read-hot", 0.1, "read hot ratio (modified smallbank)")
	writeHot := flag.Float64("write-hot", 0.1, "write hot ratio (modified smallbank)")
	clientDelayMS := flag.Int("client-delay", 0, "client delay (ms)")
	readIntervalMS := flag.Int("read-interval", 0, "interval between reads (ms)")
	seed := flag.Int64("seed", 42, "random seed")
	wl := flag.String("workload", "msmallbank", "registered scenario name (see -list-workloads)")
	accounts := flag.Int("accounts", 0, "pool size override (0 = scenario default)")
	theta := flag.Float64("theta", 0.5, "zipfian coefficient (mixed/singlemod)")
	listWorkloads := flag.Bool("list-workloads", false, "print the registered scenarios and exit")
	verify := flag.Bool("verify", false, "run the serializability verifier afterwards")
	flag.Parse()

	if *listWorkloads {
		for _, name := range scenario.Names() {
			sc, _ := scenario.Get(name)
			fmt.Printf("%-12s %s\n", name, sc.Doc)
		}
		return
	}

	sc, ok := scenario.Get(*wl)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q (have %v)\n", *wl, scenario.Names())
		os.Exit(2)
	}
	params := scenario.Params{
		Accounts: *accounts,
		Theta:    *theta,
		ReadHot:  *readHot,
		WriteHot: *writeHot,
	}
	// Two explicit, independently seeded streams: one for the workload
	// generator, one for the pipeline's own choices. Nothing in the harness
	// touches the global math/rand source, so runs reproduce exactly even
	// when several harness processes (or parallel CI shards) run at once.
	rng := rand.New(rand.NewSource(*seed))
	pipelineRng := rand.New(rand.NewSource(*seed))
	gen, err := sc.Generator(rng, params)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	cfg := network.Config{
		System:       sched.System(*system),
		Profile:      network.Profile(*profile),
		Workload:     gen,
		Seed:         *seed,
		Rng:          pipelineRng,
		Duration:     sim.Time(*duration * float64(sim.Second)),
		RequestRate:  *rate,
		BlockSize:    *blockSize,
		ClientDelay:  sim.Time(*clientDelayMS) * sim.Millisecond,
		ReadInterval: sim.Time(*readIntervalMS) * sim.Millisecond,
	}
	res, err := network.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("system         %s on %s profile, workload %s\n", *system, *profile, gen.Name())
	fmt.Printf("submitted      %d tx over %.0fs at %.0f tps\n", res.Submitted, cfg.Duration.Seconds(), *rate)
	fmt.Printf("raw tps        %.1f   (in-ledger %d, %d blocks)\n", res.RawTPS, res.InLedger, res.Blocks)
	fmt.Printf("effective tps  %.1f   (committed %d)\n", res.EffectiveTPS, res.Committed)
	fmt.Printf("abort rate     %.1f%%\n", 100*res.AbortRate())
	if len(res.EarlyAborts) > 0 {
		fmt.Printf("early aborts   %s\n", res.EarlyAborts)
	}
	if len(res.LateAborts) > 0 {
		fmt.Printf("late aborts    %s\n", res.LateAborts)
	}
	fmt.Printf("latency        mean %.3fs  p50 %.3fs  p95 %.3fs  p99 %.3fs\n",
		res.Latency.Mean(), res.Latency.P50(), res.Latency.P95(), res.Latency.P99())
	if res.SharpStats != nil {
		st := res.SharpStats
		fmt.Printf("sharp stats    hops/arrival %.2f  mean block span %.2f  graph max %d  pruned %d\n",
			st.MeanHops(), st.MeanSpan(), st.MaxGraphSize, st.PrunedNodes)
	}
	if res.RescuedAntiRW > 0 {
		fmt.Printf("anti-rw saves  %d committed transactions a stale-read check would have aborted\n", res.RescuedAntiRW)
	}
	if err := sc.CheckInvariant(res.State, params); err != nil {
		fmt.Fprintf(os.Stderr, "SCENARIO INVARIANT VIOLATION: %v\n", err)
		os.Exit(1)
	}
	if *verify {
		if err := network.VerifySerializability(res); err != nil {
			fmt.Fprintf(os.Stderr, "SERIALIZABILITY VIOLATION: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("serializability verified: committed schedule acyclic; serial re-execution matches")
	}
}
