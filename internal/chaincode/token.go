package chaincode

import "fmt"

// Token is a fixed-supply token ledger: the whole supply is issued at
// genesis and transfers neither mint nor burn, so the sum of all balances is
// invariant under any correct schedule. A scheduler that loses an update or
// double-applies one breaks the conservation law — the scenario's post-run
// invariant checks exactly that.
//
// Keys: "token:<id>" holds each account's balance.
type Token struct{}

// TokenKey returns an account's balance key.
func TokenKey(id string) string { return "token:" + id }

// Name implements Contract.
func (Token) Name() string { return "token" }

// Invoke implements Contract.
//
// Functions:
//
//	transfer from to amount — move tokens, failing on insufficient funds
//	balance id              — read-only balance query
func (Token) Invoke(stub Stub) error {
	args := stub.Args()
	switch stub.Function() {
	case "transfer":
		if err := needArgs(stub, 3); err != nil {
			return err
		}
		amount, err := parseInt(args[2])
		if err != nil {
			return err
		}
		if amount <= 0 {
			return fmt.Errorf("chaincode: transfer amount %d must be positive", amount)
		}
		if args[0] == args[1] {
			return fmt.Errorf("chaincode: transfer to self")
		}
		from, err := readInt(stub, TokenKey(args[0]))
		if err != nil {
			return err
		}
		to, err := readInt(stub, TokenKey(args[1]))
		if err != nil {
			return err
		}
		if from < amount {
			return fmt.Errorf("chaincode: account %s holds %d, cannot transfer %d", args[0], from, amount)
		}
		if err := stub.PutState(TokenKey(args[0]), formatInt(from-amount)); err != nil {
			return err
		}
		return stub.PutState(TokenKey(args[1]), formatInt(to+amount))
	case "balance":
		if err := needArgs(stub, 1); err != nil {
			return err
		}
		bal, err := readInt(stub, TokenKey(args[0]))
		if err != nil {
			return err
		}
		stub.SetResult(formatInt(bal))
		return nil
	default:
		return fmt.Errorf("chaincode: token has no function %q", stub.Function())
	}
}
