package commit

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"

	"fabricsharp/internal/chaincode"
	"fabricsharp/internal/ledger"
	"fabricsharp/internal/metrics"
	"fabricsharp/internal/protocol"
	"fabricsharp/internal/reexec"
	"fabricsharp/internal/statedb"
	"fabricsharp/internal/trace"
)

// DefaultQueueDepth is the delivery-channel buffer when Config leaves it
// unset: deep enough that ordering rarely blocks on a slow peer, bounded so
// a stalled peer exerts backpressure instead of hoarding unbounded memory.
const DefaultQueueDepth = 64

// Config wires a Committer to one peer's state and ledger. The Committer
// deliberately knows nothing about the network that feeds it — completion
// and failure flow out through callbacks, so the package has no dependency
// on the fabric layer.
type Config struct {
	// Name identifies the peer in errors and metrics ("peer0").
	Name string
	// State is the peer's versioned state database.
	State *statedb.DB
	// Chain is the peer's ledger.
	Chain *ledger.Chain
	// Validation configures the parallel validator.
	Validation Options
	// QueueDepth buffers the delivery channel (default DefaultQueueDepth).
	QueueDepth int
	// OnCommit, when set, fires after each block commits, from the committer
	// goroutine, with the peer's appended block and its validation codes.
	OnCommit func(blk *ledger.Block, codes []protocol.ValidationCode)
	// OnError, when set, fires once on the first commit failure. The
	// committer then drains further deliveries without applying them, so an
	// upstream orderer never blocks on a poisoned pipeline.
	OnError func(err error)
	// Tracer, when set, records per-transaction stage timestamps (deliver,
	// validate, commit, rescue) — write-only side telemetry outside the
	// deterministic scope (see internal/trace). Nil disables recording.
	Tracer *trace.Tracer
}

// Stats instruments one committer: delivery-queue depth (with high-water
// mark), blocks/transactions committed, validation parallelism, and commit
// latency.
type Stats struct {
	// QueueDepth is the instantaneous delivery-channel backlog.
	QueueDepth metrics.Gauge
	// BlocksCommitted counts blocks fully applied.
	BlocksCommitted metrics.Counter
	// TxsValidated counts transactions validated (any verdict).
	TxsValidated metrics.Counter
	// ValidationGroups counts MVCC conflict groups validated in parallel.
	ValidationGroups metrics.Counter
	// GroupsPerBlock samples the per-block conflict-group count — the
	// available intra-block parallelism.
	GroupsPerBlock metrics.SyncHistogram
	// CommitLatencyMS samples per-block commit latency (validate + apply),
	// in milliseconds.
	CommitLatencyMS metrics.SyncHistogram
	// RescueAttempts counts MVCC-aborted transactions the post-order rescue
	// phase re-executed; RescueCommitted those it flipped to Rescued and
	// RescueStillAborted those it deterministically left aborted.
	RescueAttempts     metrics.Counter
	RescueCommitted    metrics.Counter
	RescueStillAborted metrics.Counter
	// RescueRoundsPerBlock samples the speculative round count of blocks
	// whose rescue phase had candidates — the retry cost of optimistic
	// re-execution.
	RescueRoundsPerBlock metrics.SyncHistogram
}

// Committer is one peer's pipelined validation/commit stage: a goroutine
// consuming sealed blocks from a buffered delivery channel, validating them
// with the parallel validator, and applying the valid writes. It replaces
// the orderer-driven inline commit: ordering proceeds while peers commit.
type Committer struct {
	cfg       Config
	deliver   chan *ledger.Block
	pending   atomic.Int64 // delivered but not yet fully committed
	failed    atomic.Bool
	errOnce   sync.Once
	closeOnce sync.Once
	wg        sync.WaitGroup
	started   atomic.Bool
	stats     Stats
}

// New builds a Committer. Call Start to launch its goroutine.
func New(cfg Config) *Committer {
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = DefaultQueueDepth
	}
	return &Committer{cfg: cfg, deliver: make(chan *ledger.Block, depth)}
}

// Start launches the committer goroutine. It is idempotent.
func (c *Committer) Start() {
	if c.started.Swap(true) {
		return
	}
	c.wg.Add(1)
	go c.run()
}

// Deliver hands a sealed block to the committer. It blocks only when the
// delivery buffer is full — backpressure on the ordering stage, never a
// deadlock, because the committer depends on nothing the deliverer holds.
// The block is not mutated; the committer appends its own copy.
func (c *Committer) Deliver(blk *ledger.Block) {
	for _, tx := range blk.Transactions {
		c.cfg.Tracer.Record(string(tx.ID), trace.StageDeliver, blk.Header.Number)
	}
	c.pending.Add(1)
	c.stats.QueueDepth.Add(1)
	c.deliver <- blk
}

// Close stops the committer after it drains every delivered block, and
// waits for the goroutine to exit. It is idempotent; no Deliver may follow
// the first call.
func (c *Committer) Close() {
	c.closeOnce.Do(func() { close(c.deliver) })
	if c.started.Load() {
		c.wg.Wait()
	}
}

// Idle reports whether every delivered block has been fully processed.
func (c *Committer) Idle() bool { return c.pending.Load() == 0 }

// Failed reports whether the committer hit a fatal commit error.
func (c *Committer) Failed() bool { return c.failed.Load() }

// Stats exposes the committer's instrumentation.
func (c *Committer) Stats() *Stats { return &c.stats }

func (c *Committer) run() {
	defer c.wg.Done()
	for blk := range c.deliver {
		c.stats.QueueDepth.Add(-1)
		if !c.failed.Load() {
			start := metrics.StartWatch()
			if err := c.commit(blk); err != nil {
				c.fail(err)
			} else {
				c.stats.CommitLatencyMS.Add(float64(start.ElapsedNS()) / 1e6)
			}
		}
		c.pending.Add(-1)
	}
}

func (c *Committer) fail(err error) {
	c.failed.Store(true)
	c.errOnce.Do(func() {
		if c.cfg.OnError != nil {
			c.cfg.OnError(fmt.Errorf("commit: %s: %w", c.cfg.Name, err))
		}
	})
}

// commit is the live path: append the peer's own copy of the block, run the
// parallel validator, record the codes as block metadata, and batch-apply
// the valid writes. A delivered block carrying the orderer's precomputed
// shadow verdicts (blk.Validation) is cross-checked byte for byte: the
// agreement property requires verdicts to be a pure function of the stream,
// so any divergence between the orderer's value-free derivation and the
// peer's full validation is a pipeline bug that must fail loudly rather
// than be silently re-derived around.
func (c *Committer) commit(blk *ledger.Block) error {
	peerBlk := &ledger.Block{Header: blk.Header, Transactions: blk.Transactions}
	if err := c.cfg.Chain.Append(peerBlk); err != nil {
		return fmt.Errorf("append block %d: %w", blk.Header.Number, err)
	}
	res := ValidateBlock(c.cfg.State, peerBlk, c.cfg.Validation)
	for _, tx := range peerBlk.Transactions {
		c.cfg.Tracer.Record(string(tx.ID), trace.StageValidate, peerBlk.Header.Number)
	}
	if blk.Validation != nil {
		if err := assertVerdictsEqual(blk.Header.Number, blk.Validation, res.Codes); err != nil {
			return err
		}
		// The rescue digest is part of the same agreement contract: the
		// peer's re-derived write sets must byte-match the orderer's.
		if !bytes.Equal(blk.RescueDigest, res.Rescue.Digest) {
			return fmt.Errorf("block %d: peer rescue digest %x diverges from sealed digest %x",
				blk.Header.Number, res.Rescue.Digest, blk.RescueDigest)
		}
	}
	if err := c.cfg.Chain.SetValidationRescued(peerBlk.Header.Number, res.Codes, res.Rescue.Digest); err != nil {
		return fmt.Errorf("record validation for block %d: %w", peerBlk.Header.Number, err)
	}
	if err := c.apply(peerBlk, res.Writes); err != nil {
		return err
	}
	if c.cfg.Tracer != nil {
		num := peerBlk.Header.Number
		for i, tx := range peerBlk.Transactions {
			c.cfg.Tracer.Record(string(tx.ID), trace.StageCommit, num)
			if res.Codes[i] == protocol.Rescued {
				c.cfg.Tracer.Record(string(tx.ID), trace.StageRescue, num)
			}
		}
	}
	c.stats.TxsValidated.Add(uint64(len(peerBlk.Transactions)))
	if res.Groups > 0 {
		c.stats.ValidationGroups.Add(uint64(res.Groups))
		c.stats.GroupsPerBlock.Add(float64(res.Groups))
	}
	if res.Rescue.Attempted > 0 {
		c.stats.RescueAttempts.Add(uint64(res.Rescue.Attempted))
		c.stats.RescueCommitted.Add(uint64(res.Rescue.Rescued))
		c.stats.RescueStillAborted.Add(uint64(res.Rescue.StillAborted()))
		c.stats.RescueRoundsPerBlock.Add(float64(res.Rescue.Rounds))
	}
	if c.cfg.OnCommit != nil {
		c.cfg.OnCommit(peerBlk, res.Codes)
	}
	return nil
}

// assertVerdictsEqual compares the orderer's precomputed codes against the
// peer's own, reporting the first divergent transaction.
func assertVerdictsEqual(block uint64, precomputed, derived []protocol.ValidationCode) error {
	if len(precomputed) != len(derived) {
		return fmt.Errorf("block %d: %d precomputed verdicts vs %d derived", block, len(precomputed), len(derived))
	}
	for i := range derived {
		if precomputed[i] != derived[i] {
			return fmt.Errorf("block %d tx %d: peer verdict %v diverges from orderer shadow verdict %v",
				block, i, derived[i], precomputed[i])
		}
	}
	return nil
}

// ReplayStored is the restart path: re-adopt a block persisted with its
// validation codes, applying exactly the writes the original commit did. It
// shares WritesFor/apply with the live path, so replay and live commit
// cannot drift. Rescued verdicts carry no write sets in the block — replay
// re-derives them by re-running the deterministic rescue phase against the
// replayed state and asserts the outcome matches what was sealed.
func (c *Committer) ReplayStored(b *ledger.Block) error {
	if len(b.Validation) != len(b.Transactions) {
		return fmt.Errorf("commit: stored block %d missing validation metadata", b.Header.Number)
	}
	blk := &ledger.Block{Header: b.Header, Transactions: b.Transactions, Validation: b.Validation, RescueDigest: b.RescueDigest}
	if err := c.cfg.Chain.Append(blk); err != nil {
		return fmt.Errorf("commit: replay block %d: %w", blk.Header.Number, err)
	}
	out, err := ReplayRescue(reexec.DBSource(c.cfg.State), blk, c.cfg.Validation.Registry)
	if err != nil {
		return fmt.Errorf("commit: replay block %d: %w", blk.Header.Number, err)
	}
	return c.apply(blk, WritesForRescued(blk, blk.Validation, out.Writes))
}

// ReplayRescue re-derives a stored block's rescue outcome: the Rescued
// verdicts are reset to their pre-rescue MVCCConflict state, the
// deterministic rescue phase re-runs against base (the state as of the
// block's parent), and the re-derived codes and digest are asserted against
// the sealed ones. Blocks without Rescued verdicts return a zero Outcome
// without running anything.
func ReplayRescue(base reexec.StateSource, blk *ledger.Block, registry *chaincode.Registry) (reexec.Outcome, error) {
	hasRescued := false
	for _, code := range blk.Validation {
		if code == protocol.Rescued {
			hasRescued = true
			break
		}
	}
	if !hasRescued {
		if blk.RescueDigest != nil {
			return reexec.Outcome{}, fmt.Errorf("stored block %d carries a rescue digest but no rescued verdict", blk.Header.Number)
		}
		return reexec.Outcome{}, nil
	}
	if registry == nil {
		return reexec.Outcome{}, fmt.Errorf("stored block %d has rescued verdicts but no contract registry to replay them", blk.Header.Number)
	}
	pre := make([]protocol.ValidationCode, len(blk.Validation))
	for i, code := range blk.Validation {
		if code == protocol.Rescued {
			pre[i] = protocol.MVCCConflict
		} else {
			pre[i] = code
		}
	}
	out := reexec.Run(base, blk.Header.Number, blk.Transactions, pre, reexec.Options{Registry: registry})
	if err := assertVerdictsEqual(blk.Header.Number, blk.Validation, out.Codes); err != nil {
		return reexec.Outcome{}, fmt.Errorf("rescue replay: %w", err)
	}
	if !bytes.Equal(blk.RescueDigest, out.Digest) {
		return reexec.Outcome{}, fmt.Errorf("rescue replay: block %d digest %x diverges from sealed %x",
			blk.Header.Number, out.Digest, blk.RescueDigest)
	}
	return out, nil
}

// apply batch-commits a block's valid writes — the single state-mutation
// point for both the live and replay paths.
func (c *Committer) apply(blk *ledger.Block, writes []statedb.BlockWrites) error {
	if err := c.cfg.State.ApplyBlock(blk.Header.Number, writes); err != nil {
		return fmt.Errorf("apply block %d: %w", blk.Header.Number, err)
	}
	c.stats.BlocksCommitted.Inc()
	return nil
}
