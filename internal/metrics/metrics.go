// Package metrics provides the small measurement toolkit the experiment
// harness reports with: latency histograms with percentiles, throughput
// accounting, and abort-taxonomy tallies.
package metrics

import (
	"fmt"
	"sort"
	"strings"

	"fabricsharp/internal/protocol"
)

// Histogram collects float64 samples (seconds, milliseconds — caller's
// choice) and answers summary statistics. The zero value is ready to use.
type Histogram struct {
	samples []float64
	sorted  bool
}

// Add records one sample.
func (h *Histogram) Add(v float64) {
	h.samples = append(h.samples, v)
	h.sorted = false
}

// N returns the sample count.
func (h *Histogram) N() int { return len(h.samples) }

// Mean returns the arithmetic mean, 0 if empty.
func (h *Histogram) Mean() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range h.samples {
		sum += v
	}
	return sum / float64(len(h.samples))
}

// Percentile returns the p-th percentile (0 < p <= 100), 0 if empty.
func (h *Histogram) Percentile(p float64) float64 {
	if len(h.samples) == 0 {
		return 0
	}
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
	idx := int(p/100*float64(len(h.samples))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.samples) {
		idx = len(h.samples) - 1
	}
	return h.samples[idx]
}

// P50 is the median.
func (h *Histogram) P50() float64 { return h.Percentile(50) }

// P95 is the 95th percentile.
func (h *Histogram) P95() float64 { return h.Percentile(95) }

// P99 is the 99th percentile.
func (h *Histogram) P99() float64 { return h.Percentile(99) }

// Max returns the largest sample.
func (h *Histogram) Max() float64 { return h.Percentile(100) }

// AbortTally counts outcomes by validation code.
type AbortTally map[protocol.ValidationCode]uint64

// Inc bumps a code.
func (t AbortTally) Inc(c protocol.ValidationCode) { t[c]++ }

// Total sums every non-valid count.
func (t AbortTally) Total() uint64 {
	var sum uint64
	for c, n := range t {
		if c != protocol.Valid {
			sum += n
		}
	}
	return sum
}

// String renders the tally deterministically, busiest codes first.
func (t AbortTally) String() string {
	type kv struct {
		c protocol.ValidationCode
		n uint64
	}
	var items []kv
	for c, n := range t {
		if n > 0 {
			items = append(items, kv{c, n})
		}
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].n != items[j].n {
			return items[i].n > items[j].n
		}
		return items[i].c < items[j].c
	})
	parts := make([]string, len(items))
	for i, it := range items {
		parts[i] = fmt.Sprintf("%s=%d", it.c, it.n)
	}
	return strings.Join(parts, " ")
}
