// Package transport is the stdlib-only TCP layer of the process-per-node
// deployment mode: a framed connection type, a listener with graceful
// shutdown, dialers with bounded retry, and a reconnecting block-delivery
// subscriber.
//
// The package also defines the two seams the fabric layer is built against:
//
//   - Delivery: where sealed blocks go (a peer's committer, a TCP fan-out,
//     or both). The in-process channels that wired orderers to peers before
//     this package existed are now just the loopback Delivery
//     implementation inside internal/fabric.
//   - Submission: where endorsed transactions enter ordering. The
//     in-process consensus.Service satisfies it directly, so a network fed
//     from a socket and a network fed from a local client share every line
//     of orderer/committer code.
//
// Backpressure is structural: block delivery is driven by the *consumer*
// (the subscriber reads frames at its own pace, and the server-side stream
// walks the sealed chain rather than buffering), so a slow peer slows only
// its own stream — TCP flow control does the rest.
package transport

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"fabricsharp/internal/consensus"
	"fabricsharp/internal/ledger"
	"fabricsharp/internal/wire"
)

// Delivery consumes sealed blocks in chain order. Implementations must be
// safe for use from one goroutine at a time and may block to exert
// backpressure; a returned error is fatal to the pipeline feeding it.
type Delivery interface {
	Deliver(blk *ledger.Block) error
}

// Submission accepts envelopes for total ordering. consensus.Service
// implementations satisfy it directly.
type Submission interface {
	Submit(env consensus.Envelope) error
}

// Assert the in-process consensus backends remain valid Submissions.
var _ Submission = (consensus.Service)(nil)

// DeliveryFunc adapts a function to the Delivery interface.
type DeliveryFunc func(blk *ledger.Block) error

// Deliver implements Delivery.
func (f DeliveryFunc) Deliver(blk *ledger.Block) error { return f(blk) }

// ---------------------------------------------------------------------------
// Framed connection
// ---------------------------------------------------------------------------

// Conn is a framed, wire-versioned connection. Sends are serialized by an
// internal mutex; Recv must be called from a single goroutine (the usual
// request/response or stream-consumer patterns).
type Conn struct {
	nc        net.Conn
	r         *bufio.Reader
	wmu       sync.Mutex
	w         *bufio.Writer
	reqMu     sync.Mutex // serializes Call request/response pairs
	closeOnce sync.Once
	closeErr  error
}

// NewConn wraps an established net.Conn.
func NewConn(nc net.Conn) *Conn {
	return &Conn{nc: nc, r: bufio.NewReader(nc), w: bufio.NewWriter(nc)}
}

// Send writes one frame and flushes it. Safe for concurrent use.
func (c *Conn) Send(t wire.MsgType, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := wire.WriteFrame(c.w, t, payload); err != nil {
		return err
	}
	return c.w.Flush()
}

// Recv reads one frame.
func (c *Conn) Recv() (wire.MsgType, []byte, error) {
	return wire.ReadFrame(c.r)
}

// Call sends a request frame and reads the response frame. Concurrent Calls
// on the same connection are serialized, so responses cannot interleave.
func (c *Conn) Call(t wire.MsgType, payload []byte) (wire.MsgType, []byte, error) {
	c.reqMu.Lock()
	defer c.reqMu.Unlock()
	//sharp:allow lockacross Call exists to serialize request/response pairs on one connection; holding reqMu across the round-trip is that serialization, and Send/Recv carry their own deadlines
	if err := c.Send(t, payload); err != nil {
		return 0, nil, err
	}
	return c.Recv()
}

// Close tears the connection down. Idempotent; concurrent Recv/Send calls
// unblock with errors.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() { c.closeErr = c.nc.Close() })
	return c.closeErr
}

// RemoteAddr names the other end for diagnostics.
func (c *Conn) RemoteAddr() string { return c.nc.RemoteAddr().String() }

// SetDeadline bounds both read and write operations.
func (c *Conn) SetDeadline(t time.Time) error { return c.nc.SetDeadline(t) }

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

// Server accepts framed connections and runs a handler per connection. Close
// is graceful and idempotent: the listener stops, every open connection is
// closed (unblocking handlers mid-Recv), and Close waits for all handler
// goroutines to return.
type Server struct {
	lis     net.Listener
	handler func(*Conn)

	mu     sync.Mutex
	conns  map[*Conn]struct{}
	closed bool

	acceptWg  sync.WaitGroup
	handlerWg sync.WaitGroup
	closeOnce sync.Once
}

// Listen starts a TCP server on addr (use "127.0.0.1:0" for an ephemeral
// test port). The handler runs once per accepted connection; when it
// returns, the connection is closed and untracked.
func Listen(addr string, handler func(*Conn)) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	s := &Server{lis: lis, handler: handler, conns: map[*Conn]struct{}{}}
	s.acceptWg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's bound address.
func (s *Server) Addr() string { return s.lis.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.acceptWg.Done()
	for {
		nc, err := s.lis.Accept()
		if err != nil {
			// Listener closed (shutdown) or a fatal accept error: either
			// way the accept loop ends; open connections drain on Close.
			return
		}
		conn := NewConn(nc)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.handlerWg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.handlerWg.Done()
			defer func() {
				_ = conn.Close()
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
			s.handler(conn)
		}()
	}
}

// Close shuts the server down: no new connections, all open connections
// closed, all handlers joined. Safe to call more than once.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		s.mu.Lock()
		s.closed = true
		conns := make([]*Conn, 0, len(s.conns))
		for c := range s.conns {
			conns = append(conns, c)
		}
		s.mu.Unlock()
		_ = s.lis.Close()
		for _, c := range conns {
			_ = c.Close()
		}
		s.acceptWg.Wait()
		s.handlerWg.Wait()
	})
	return nil
}

// ---------------------------------------------------------------------------
// Dialers
// ---------------------------------------------------------------------------

// DialTimeout is the per-attempt TCP connect timeout.
const DialTimeout = 3 * time.Second

// Dial makes a single connection attempt.
func Dial(addr string) (*Conn, error) {
	nc, err := net.DialTimeout("tcp", addr, DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return NewConn(nc), nil
}

// DialRetry dials with jittered exponential backoff until it connects or
// the caller's deadline passes — how nodes absorb cluster startup order (a
// peer may come up before its orderer) without a reconnect stampede when
// many nodes chase the same address.
func DialRetry(addr string, deadline time.Time) (*Conn, error) {
	bo := NewBackoff(10*time.Millisecond, 500*time.Millisecond, 0)
	for {
		c, err := Dial(addr)
		if err == nil {
			return c, nil
		}
		d := bo.Next()
		if remaining := time.Until(deadline); remaining <= 0 {
			return nil, fmt.Errorf("transport: dial %s: deadline passed: %w", addr, err)
		} else if d > remaining {
			d = remaining
		}
		time.Sleep(d)
	}
}
