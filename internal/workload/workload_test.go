package workload

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"fabricsharp/internal/statedb"
)

func TestZipfUniformWhenThetaZero(t *testing.T) {
	z := NewZipf(rand.New(rand.NewSource(1)), 10, 0)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)-n/10) > n/50 {
			t.Errorf("bucket %d = %d, want ~%d", i, c, n/10)
		}
	}
}

func TestZipfSkewIncreasesWithTheta(t *testing.T) {
	top := func(theta float64) float64 {
		z := NewZipf(rand.New(rand.NewSource(2)), 1000, theta)
		hits := 0
		const n = 50000
		for i := 0; i < n; i++ {
			if z.Next() == 0 {
				hits++
			}
		}
		return float64(hits) / n
	}
	p05, p10, p12 := top(0.5), top(1.0), top(1.2)
	if !(p05 < p10 && p10 < p12) {
		t.Errorf("head mass not increasing: %.3f %.3f %.3f", p05, p10, p12)
	}
	// At theta=1.2 over 1000 items the head should be clearly hot.
	if p12 < 0.1 {
		t.Errorf("theta=1.2 head mass %.3f too small", p12)
	}
}

func TestZipfBounds(t *testing.T) {
	z := NewZipf(rand.New(rand.NewSource(3)), 7, 1.2)
	for i := 0; i < 10000; i++ {
		v := z.Next()
		if v < 0 || v >= 7 {
			t.Fatalf("out of range: %d", v)
		}
	}
}

func TestZipfPanicsOnZeroN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewZipf(rand.New(rand.NewSource(1)), 0, 1)
}

func newDB(t *testing.T) *statedb.DB {
	t.Helper()
	db, err := statedb.New(statedb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestModifiedSmallbankShape(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	w, err := NewModifiedSmallbank(rng, 0, 0.3, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	db := newDB(t)
	if err := w.Seed(db); err != nil {
		t.Fatal(err)
	}
	if db.Keys() != 10000 {
		t.Errorf("seeded %d accounts", db.Keys())
	}
	hotReads, totalReads := 0, 0
	for i := 0; i < 2000; i++ {
		op := w.Next()
		if op.Contract != "msmallbank" || op.Function != "op" || len(op.Args) != 8 {
			t.Fatalf("op = %+v", op)
		}
		// Reads are args 0-3; hot accounts are ids < 100 (1% of 10k).
		seen := map[string]bool{}
		for _, a := range op.Args[:4] {
			if seen[a] {
				t.Fatalf("duplicate read account in %v", op.Args[:4])
			}
			seen[a] = true
			var id int
			fmt.Sscan(a, &id)
			totalReads++
			if id < 100 {
				hotReads++
			}
		}
	}
	ratio := float64(hotReads) / float64(totalReads)
	if math.Abs(ratio-0.3) > 0.03 {
		t.Errorf("read hot ratio = %.3f want ~0.30", ratio)
	}
}

func TestMixedSmallbankMix(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	w, err := NewMixedSmallbank(rng, 100, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	db := newDB(t)
	if err := w.Seed(db); err != nil {
		t.Fatal(err)
	}
	if db.Keys() != 200 { // checking + savings per account
		t.Errorf("seeded %d keys", db.Keys())
	}
	counts := map[string]int{}
	const n = 10000
	for i := 0; i < n; i++ {
		op := w.Next()
		switch op.Function {
		case "query":
			counts["ro"]++
		case "deposit_checking", "write_check", "transact_savings":
			counts["single"]++
			if len(op.Args) != 2 {
				t.Fatalf("args = %v", op.Args)
			}
		case "send_payment", "amalgamate":
			counts["double"]++
			if op.Args[0] == op.Args[1] {
				t.Fatal("two-account op with identical accounts")
			}
		default:
			t.Fatalf("unexpected function %q", op.Function)
		}
	}
	if math.Abs(float64(counts["ro"])/n-0.5) > 0.03 {
		t.Errorf("read-only share %.3f want ~0.50", float64(counts["ro"])/n)
	}
	if math.Abs(float64(counts["single"])/n-0.3) > 0.03 {
		t.Errorf("single-account share %.3f want ~0.30", float64(counts["single"])/n)
	}
	if math.Abs(float64(counts["double"])/n-0.2) > 0.03 {
		t.Errorf("two-account share %.3f want ~0.20", float64(counts["double"])/n)
	}
}

func TestCreateAccountUnique(t *testing.T) {
	w := &CreateAccount{}
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		op := w.Next()
		if op.Function != "create_account" {
			t.Fatalf("fn = %s", op.Function)
		}
		if seen[op.Args[0]] {
			t.Fatalf("duplicate account %s", op.Args[0])
		}
		seen[op.Args[0]] = true
	}
	if err := w.Seed(newDB(t)); err != nil {
		t.Fatal(err)
	}
}

func TestNoOpAndSingleMod(t *testing.T) {
	if op := (NoOp{}).Next(); op.Function != "noop" {
		t.Errorf("noop op = %+v", op)
	}
	rng := rand.New(rand.NewSource(6))
	s := NewSingleMod(rng, 100, 0.8)
	db := newDB(t)
	if err := s.Seed(db); err != nil {
		t.Fatal(err)
	}
	op := s.Next()
	if op.Function != "rmw" || len(op.Args) != 2 {
		t.Errorf("singlemod op = %+v", op)
	}
	if s.Name() == "" || (NoOp{}).Name() == "" {
		t.Error("names empty")
	}
}

func TestConstructorValidation(t *testing.T) {
	rng := func() *rand.Rand { return rand.New(rand.NewSource(9)) }
	cases := []struct {
		name    string
		build   func() error
		wantErr bool
	}{
		{"msmallbank pool of 3", func() error {
			_, err := NewModifiedSmallbank(rng(), 3, 0.1, 0.1)
			return err
		}, true},
		{"msmallbank ratio above 1", func() error {
			_, err := NewModifiedSmallbank(rng(), 0, 1.5, 0.1)
			return err
		}, true},
		{"msmallbank negative ratio", func() error {
			_, err := NewModifiedSmallbank(rng(), 0, 0.1, -0.1)
			return err
		}, true},
		// 100 accounts → 1 hot: readHot=1 would draw 4 distinct hot
		// accounts from a sub-pool of one, the pick loop that used to spin.
		{"msmallbank all-hot with tiny hot pool", func() error {
			_, err := NewModifiedSmallbank(rng(), 100, 1, 0.1)
			return err
		}, true},
		// 4 accounts → 1 hot, 3 cold: writeHot=0 needs 4 distinct cold.
		{"msmallbank all-cold with tiny cold pool", func() error {
			_, err := NewModifiedSmallbank(rng(), 4, 0.1, 0)
			return err
		}, true},
		{"msmallbank defaults", func() error {
			_, err := NewModifiedSmallbank(rng(), 0, 0.1, 0.1)
			return err
		}, false},
		{"msmallbank extremes on big pool", func() error {
			_, err := NewModifiedSmallbank(rng(), 10000, 1, 0)
			return err
		}, false},
		{"mixed pool of 1", func() error {
			_, err := NewMixedSmallbank(rng(), 1, 0.5)
			return err
		}, true},
		{"mixed pool of 2", func() error {
			_, err := NewMixedSmallbank(rng(), 2, 0.5)
			return err
		}, false},
		{"auction no bidders", func() error {
			_, err := NewAuction(rng(), -1)
			return err
		}, true},
		{"token pool of 1", func() error {
			_, err := NewTokenTransfer(rng(), 1)
			return err
		}, true},
		{"analytics no metrics", func() error {
			_, err := NewAnalytics(rng(), -5)
			return err
		}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.build()
			if tc.wantErr && err == nil {
				t.Error("expected error")
			}
			if !tc.wantErr && err != nil {
				t.Errorf("unexpected error: %v", err)
			}
		})
	}
}

func TestModifiedSmallbankExtremesTerminate(t *testing.T) {
	// Ratio 1 (all hot) and ratio 0 (all cold) on a validated pool must
	// still produce 4 distinct accounts per side.
	rng := rand.New(rand.NewSource(11))
	w, err := NewModifiedSmallbank(rng, 1000, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		op := w.Next()
		if len(op.Args) != 8 {
			t.Fatalf("args = %v", op.Args)
		}
	}
}

func TestAuctionWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	w, err := NewAuction(rng, 10)
	if err != nil {
		t.Fatal(err)
	}
	db := newDB(t)
	if err := w.Seed(db); err != nil {
		t.Fatal(err)
	}
	if db.Keys() != 1 {
		t.Errorf("auction genesis seeded %d keys, want 1", db.Keys())
	}
	lastBid := -1
	bids, watches := 0, 0
	for i := 0; i < 1000; i++ {
		op := w.Next()
		switch op.Function {
		case "bid":
			bids++
			var amount int
			fmt.Sscan(op.Args[1], &amount)
			if amount < lastBid {
				t.Fatalf("bid amounts must ratchet: %d after %d", amount, lastBid)
			}
			lastBid = amount
		case "watch":
			watches++
		default:
			t.Fatalf("unexpected function %q", op.Function)
		}
	}
	if bids == 0 || watches == 0 {
		t.Errorf("mix degenerate: %d bids, %d watches", bids, watches)
	}
}

func TestTokenTransferWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	w, err := NewTokenTransfer(rng, 50)
	if err != nil {
		t.Fatal(err)
	}
	db := newDB(t)
	if err := w.Seed(db); err != nil {
		t.Fatal(err)
	}
	if db.Keys() != 50 {
		t.Errorf("token genesis seeded %d keys, want 50", db.Keys())
	}
	for i := 0; i < 1000; i++ {
		op := w.Next()
		if op.Function == "transfer" && op.Args[0] == op.Args[1] {
			t.Fatal("self-transfer generated")
		}
	}
}

func TestAnalyticsWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	w, err := NewAnalytics(rng, 20)
	if err != nil {
		t.Fatal(err)
	}
	db := newDB(t)
	if err := w.Seed(db); err != nil {
		t.Fatal(err)
	}
	if db.Keys() != 21 { // 20 metrics + aggregate
		t.Errorf("analytics genesis seeded %d keys, want 21", db.Keys())
	}
	counts := map[string]int{}
	for i := 0; i < 2000; i++ {
		counts[w.Next().Function]++
	}
	for _, fn := range []string{"scan", "audit", "update"} {
		if counts[fn] == 0 {
			t.Errorf("no %s operations in 2000 draws", fn)
		}
	}
	if counts["scan"]+counts["audit"] <= counts["update"] {
		t.Errorf("analytics should be read-heavy: %v", counts)
	}
}

func TestSeedGenesisRejectsNonFreshDB(t *testing.T) {
	db := newDB(t)
	if err := SeedGenesis(db, AccountGenesis(5)); err != nil {
		t.Fatal(err)
	}
	if err := SeedGenesis(db, AccountGenesis(5)); err == nil {
		t.Error("re-seeding a seeded database must fail")
	}
}

func TestGeneratorsDeterministicGivenSeed(t *testing.T) {
	mk := func() []string {
		rng := rand.New(rand.NewSource(77))
		w, err := NewModifiedSmallbank(rng, 0, 0.2, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		var ops []string
		for i := 0; i < 50; i++ {
			ops = append(ops, fmt.Sprint(w.Next()))
		}
		return ops
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("generator not deterministic at %d", i)
		}
	}
}
