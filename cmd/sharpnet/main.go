// Command sharpnet drives the EOV blockchain through subcommands:
//
//	sharpnet demo    — boot the in-process network (library mode) and run a
//	                   short contended counter workload against it: a
//	                   zero-setup way to watch the execute-order-validate
//	                   pipeline and the Sharp reordering at work.
//	sharpnet load    — act as a pure wire client against a process-per-node
//	                   cluster (cmd/fabricnode). With -target-tps it is an
//	                   open-loop generator: submissions are paced at the
//	                   target rate regardless of completion latency, and the
//	                   run ends with per-stage latency quantiles joined from
//	                   every node's trace ring. Without -target-tps it runs
//	                   the legacy closed-loop -clients/-txs mix. Either way
//	                   it finally asserts that every peer converged to
//	                   bit-identical chain tips and state fingerprints.
//	sharpnet trace   — drain the always-on stage-tracing rings of live
//	                   orderers and peers and print merged per-stage latency
//	                   quantiles (submit → order → seal → deliver → validate
//	                   → commit).
//	sharpnet status  — print one machine-readable line per cluster member
//	                   (role, name, term, leader, blocks, tip, committed).
//	sharpnet check   — poll until every live orderer and every peer agree on
//	                   a bit-identical chain tip and state fingerprint, then
//	                   assert the ledger's committed tally covers
//	                   -expect-committed.
//
// Usage:
//
//	sharpnet demo [-system fabric#] [-clients 4] [-txs 200]
//	sharpnet load -orderer 127.0.0.1:7050 -peer-addrs 127.0.0.1:7051,127.0.0.1:7052 \
//	         -target-tps 500 -duration 10s [-workload msmallbank] [-accounts 100000]
//	sharpnet load -orderer ... -peer-addrs ... [-clients 4] [-txs 125] [-accounts 32]
//	sharpnet trace -orderer ... -peer-addrs ...
//	sharpnet check -orderer ... -peer-addrs ... -expect-committed 500
//
// The pre-subcommand CLI (`sharpnet -mode load ...`) still works through a
// deprecation shim that maps -mode onto the matching subcommand.
package main

import (
	"fmt"
	"io"
	"os"
	"strings"
)

func main() {
	args := os.Args[1:]
	if len(args) > 0 {
		switch args[0] {
		case "help", "-h", "-help", "--help":
			usage(os.Stdout)
			return
		}
	}
	args, legacyMode := legacyArgs(args)
	if legacyMode != "" {
		fmt.Fprintf(os.Stderr,
			"sharpnet: the -mode flag is deprecated; use `sharpnet %s` with the same flags\n", legacyMode)
	}
	if len(args) == 0 {
		usage(os.Stderr)
		os.Exit(2)
	}
	cmd, rest := args[0], args[1:]
	var code int
	switch cmd {
	case "demo":
		code = cmdDemo(rest)
	case "load":
		code = cmdLoad(rest)
	case "trace":
		code = cmdTrace(rest)
	case "status":
		code = cmdStatus(rest)
	case "check":
		code = cmdCheck(rest)
	default:
		fmt.Fprintf(os.Stderr, "sharpnet: unknown command %q\n\n", cmd)
		usage(os.Stderr)
		code = 2
	}
	os.Exit(code)
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage: sharpnet <command> [flags]

commands:
  demo    run the in-process network demo (no cluster needed)
  load    drive a fabricnode cluster: open-loop at -target-tps with stage
          tracing, or the legacy closed-loop -clients/-txs mix
  trace   drain every node's stage-tracing ring and print merged per-stage
          latency quantiles
  status  print one line per reachable cluster member
  check   poll until the cluster agrees bit for bit, then assert the
          committed-transaction tally

run 'sharpnet <command> -h' for that command's flags.
`)
}

// legacyArgs maps the pre-subcommand flag soup (`sharpnet -mode load ...`,
// default mode demo) onto the subcommand CLI: the -mode pair is stripped and
// its value becomes the leading subcommand. The second return is the mapped
// mode ("" when the invocation was already subcommand-shaped), so main
// prints exactly one deprecation warning.
func legacyArgs(args []string) ([]string, string) {
	if len(args) == 0 || !strings.HasPrefix(args[0], "-") {
		return args, ""
	}
	mode := "demo"
	rest := make([]string, 0, len(args))
	for i := 0; i < len(args); i++ {
		switch a := args[i]; {
		case a == "-mode" || a == "--mode":
			if i+1 < len(args) {
				i++
				mode = args[i]
			}
		case strings.HasPrefix(a, "-mode="):
			mode = a[len("-mode="):]
		case strings.HasPrefix(a, "--mode="):
			mode = a[len("--mode="):]
		default:
			rest = append(rest, a)
		}
	}
	return append([]string{mode}, rest...), mode
}

func splitAddrs(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
