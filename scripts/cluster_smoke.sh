#!/usr/bin/env bash
# cluster_smoke.sh — boot a real multi-OS-process EOV cluster, drive
# SmallBank traffic (or any registered scenario, via WORKLOAD=) through it
# with the sharpnet wire client, and assert
# every replica converges to bit-identical chain tip hashes and state
# fingerprints. Runs once per requested system. CI runs this as the
# cluster-smoke job; node logs land in $LOGDIR for artifact upload.
#
# Two shapes:
#   default   1 orderer + 2 peers, plain convergence, then a short
#             open-loop burst (`sharpnet load -target-tps`) asserting the
#             achieved rate reaches >=95% of the target and the merged
#             stage traces cover >=99% of the burst's committed txs.
#   CHAOS=1   3 Raft orderers + 2 peers; the Raft leader is SIGKILLed
#             mid-load, restarted, and the re-elected leader is killed
#             too. Asserts zero lost committed transactions and
#             bit-identical survivors (the fault-tolerance contract).
#
# Environment knobs:
#   SYSTEMS     systems to exercise            (default: "fabric# focc-l";
#               chaos uses the first one only)
#   CLIENTS     concurrent load clients        (default: 4)
#   TXS         transactions per client        (default: 118)
#   ACCOUNTS    SmallBank account pool, or the scenario's pool size when
#               WORKLOAD is set                (default: 28; total tx =
#               ACCOUNTS + CLIENTS*TXS = 500 with the defaults)
#   WORKLOAD    registered scenario name (see `fabricsim -list-workloads`,
#               docs/workloads.md). When set, the closed-loop clients drive
#               its generator instead of the built-in SmallBank seeding,
#               and the open-loop burst uses it too (default: "", which
#               still installs the msmallbank genesis for the burst)
#   TARGET_TPS  open-loop burst offered rate   (default: 150)
#   OL_DURATION open-loop burst length         (default: 3s)
#   OL_WORKERS  open-loop submission workers   (default: 32)
#   PORT_BASE   first TCP port                 (default: 27050)
#   LOGDIR      where node logs go             (default: ./cluster-logs)
#   RESCUE      1 = post-order re-execution on (default: 1; set 0 to disable)
#   CHAOS       1 = kill-the-leader failover   (default: 0)
set -euo pipefail

SYSTEMS=${SYSTEMS:-"fabric# focc-l"}
CLIENTS=${CLIENTS:-4}
TXS=${TXS:-118}
ACCOUNTS=${ACCOUNTS:-28}
WORKLOAD=${WORKLOAD:-}
TARGET_TPS=${TARGET_TPS:-150}
OL_DURATION=${OL_DURATION:-3s}
OL_WORKERS=${OL_WORKERS:-32}
PORT_BASE=${PORT_BASE:-27050}
LOGDIR=${LOGDIR:-cluster-logs}
RESCUE=${RESCUE:-1}
CHAOS=${CHAOS:-0}
BIN=$(mktemp -d)

RESCUE_FLAG=""
if [ "$RESCUE" = "1" ]; then
  RESCUE_FLAG="-rescue"
fi

# Every node installs a scenario genesis (identical cluster-wide): the
# WORKLOAD override's, or msmallbank's so the open-loop burst has an account
# pool seeded at block 0. The closed-loop clients drive WORKLOAD's generator
# when set, else the built-in SmallBank mix (whose create_account seeding
# coexists with the genesis keys).
OL_WORKLOAD=${WORKLOAD:-msmallbank}
NODE_WL_FLAGS="-workload $OL_WORKLOAD -accounts $ACCOUNTS"
LOAD_WL_FLAGS=""
if [ -n "$WORKLOAD" ]; then
  LOAD_WL_FLAGS="-workload $WORKLOAD"
fi

mkdir -p "$LOGDIR"
go build -o "$BIN" ./cmd/fabricnode ./cmd/sharpnet

PIDS=()
teardown() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  for pid in "${PIDS[@]:-}"; do
    wait "$pid" 2>/dev/null || true
  done
  PIDS=()
}
trap teardown EXIT

# ---------------------------------------------------------------------------
# Chaos shape: 3 Raft orderers + 2 peers, two leader kills mid-load.
# ---------------------------------------------------------------------------
if [ "$CHAOS" = "1" ]; then
  system=$(printf '%s' "$SYSTEMS" | awk '{print $1}')
  slug=chaos
  RAFT_DIR=$(mktemp -d)
  C0="127.0.0.1:$PORT_BASE";      C1="127.0.0.1:$((PORT_BASE+1))"; C2="127.0.0.1:$((PORT_BASE+2))"
  R0="127.0.0.1:$((PORT_BASE+3))"; R1="127.0.0.1:$((PORT_BASE+4))"; R2="127.0.0.1:$((PORT_BASE+5))"
  P0="127.0.0.1:$((PORT_BASE+6))"; P1="127.0.0.1:$((PORT_BASE+7))"
  ORDS="$C0,$C1,$C2"
  PEERS="$P0,$P1"
  CLUSTER="$R0,$R1,$R2"
  REDIRECTS="$R0=$C0,$R1=$C1,$R2=$C2"
  declare -A ORD_PID=()

  start_orderer() { # $1 = index (0..2)
    local caddr raddr
    case "$1" in
      0) caddr=$C0; raddr=$R0 ;;
      1) caddr=$C1; raddr=$R1 ;;
      2) caddr=$C2; raddr=$R2 ;;
    esac
    "$BIN/fabricnode" -role orderer -listen "$caddr" \
        -peers peer0,peer1 -system "$system" -block-size 50 -block-timeout 50ms \
        -orderers 1 $RESCUE_FLAG $NODE_WL_FLAGS \
        -raft-id "$raddr" -raft-cluster "$CLUSTER" -raft-redirects "$REDIRECTS" \
        -raft-dir "$RAFT_DIR/member$1" -raft-election-timeout 150ms \
        >> "$LOGDIR/orderer$1-$slug.log" 2>&1 &
    ORD_PID[$caddr]=$!
    PIDS+=($!)
  }

  # current_leader prints the leader's client address ("" mid-election).
  current_leader() {
    "$BIN/sharpnet" status -orderer "$ORDS" -dial-timeout 2s 2>/dev/null \
      | sed -n 's/.* leader=\([^ ][^ ]*\) .*/\1/p' | head -1
  }

  # wait_leader polls until a leader differing from $1 emerges.
  wait_leader() {
    local avoid="${1:-}" leader deadline=$((SECONDS+60))
    while [ "$SECONDS" -lt "$deadline" ]; do
      leader=$(current_leader)
      if [ -n "$leader" ] && [ "$leader" != "$avoid" ]; then
        printf '%s' "$leader"
        return 0
      fi
      sleep 0.3
    done
    echo "chaos: no leader (re-)elected within 60s" >&2
    return 1
  }

  echo "=== chaos smoke: $system (orderers $ORDS, raft $CLUSTER, peers $PEERS) ==="
  start_orderer 0; start_orderer 1; start_orderer 2
  "$BIN/fabricnode" -role peer -name peer0 -listen "$P0" \
      -orderer "$ORDS" -peers peer0,peer1 -system "$system" $RESCUE_FLAG $NODE_WL_FLAGS \
      > "$LOGDIR/peer0-$slug.log" 2>&1 &
  PIDS+=($!)
  "$BIN/fabricnode" -role peer -name peer1 -listen "$P1" \
      -orderer "$ORDS" -peers peer0,peer1 -system "$system" $RESCUE_FLAG $NODE_WL_FLAGS \
      > "$LOGDIR/peer1-$slug.log" 2>&1 &
  PIDS+=($!)

  "$BIN/sharpnet" load -orderer "$ORDS" -peer-addrs "$PEERS" \
      -clients "$CLIENTS" -txs "$TXS" -accounts "$ACCOUNTS" $LOAD_WL_FLAGS \
      > "$LOGDIR/load-$slug.log" 2>&1 &
  LOAD_PID=$!
  PIDS+=($LOAD_PID)

  sleep 2  # let the load get going before the first kill
  LEADER1=$(wait_leader)
  echo "chaos: killing leader $LEADER1 (pid ${ORD_PID[$LEADER1]})"
  kill -9 "${ORD_PID[$LEADER1]}" 2>/dev/null || true
  LEADER2=$(wait_leader "$LEADER1")
  echo "chaos: new leader $LEADER2; restarting the killed member"
  case "$LEADER1" in
    "$C0") start_orderer 0 ;;
    "$C1") start_orderer 1 ;;
    "$C2") start_orderer 2 ;;
  esac

  sleep 1  # more load under the new leader
  LEADER2=$(wait_leader)  # re-read: leadership may have moved again
  echo "chaos: killing re-elected leader $LEADER2 (pid ${ORD_PID[$LEADER2]})"
  kill -9 "${ORD_PID[$LEADER2]}" 2>/dev/null || true

  if ! wait "$LOAD_PID"; then
    echo "chaos: load run failed (see $LOGDIR/load-$slug.log)" >&2
    tail -20 "$LOGDIR/load-$slug.log" >&2
    exit 1
  fi
  cat "$LOGDIR/load-$slug.log"
  TOTAL=$((ACCOUNTS + CLIENTS * TXS))
  if [ -n "$WORKLOAD" ]; then
    TOTAL=$((CLIENTS * TXS))  # scenario mode seeds via genesis, not load txs
  fi
  if [ "$TOTAL" -lt 500 ]; then
    echo "chaos: only $TOTAL transactions driven, need 500+ (raise CLIENTS/TXS/ACCOUNTS)" >&2
    exit 1
  fi
  COMMITTED=$(sed -n 's/^COMMITTED_TOTAL //p' "$LOGDIR/load-$slug.log")
  if [ -z "$COMMITTED" ] || [ "$COMMITTED" -le 0 ]; then
    echo "chaos: no committed-transaction tally in the load log" >&2
    exit 1
  fi
  "$BIN/sharpnet" check -orderer "$ORDS" -peer-addrs "$PEERS" \
      -expect-committed "$COMMITTED" | tee "$LOGDIR/check-$slug.log"

  teardown
  echo "=== chaos smoke: OK ($COMMITTED committed transactions, two leader kills) ==="
  exit 0
fi

port=$PORT_BASE
for system in $SYSTEMS; do
  slug=$(printf '%s' "$system" | tr -c 'a-z0-9' '-')
  orderer_port=$port; peer0_port=$((port+1)); peer1_port=$((port+2))
  port=$((port+3))
  echo "=== cluster smoke: $system (orderer :$orderer_port, peers :$peer0_port :$peer1_port) ==="

  "$BIN/fabricnode" -role orderer -listen "127.0.0.1:$orderer_port" \
      -peers peer0,peer1 -system "$system" -block-size 50 -block-timeout 50ms \
      $RESCUE_FLAG $NODE_WL_FLAGS \
      > "$LOGDIR/orderer-$slug.log" 2>&1 &
  PIDS+=($!)
  "$BIN/fabricnode" -role peer -name peer0 -listen "127.0.0.1:$peer0_port" \
      -orderer "127.0.0.1:$orderer_port" -peers peer0,peer1 -system "$system" \
      $RESCUE_FLAG $NODE_WL_FLAGS \
      > "$LOGDIR/peer0-$slug.log" 2>&1 &
  PIDS+=($!)
  "$BIN/fabricnode" -role peer -name peer1 -listen "127.0.0.1:$peer1_port" \
      -orderer "127.0.0.1:$orderer_port" -peers peer0,peer1 -system "$system" \
      $RESCUE_FLAG $NODE_WL_FLAGS \
      > "$LOGDIR/peer1-$slug.log" 2>&1 &
  PIDS+=($!)

  # The wire client retries dials, so no explicit readiness wait is needed.
  "$BIN/sharpnet" load -orderer "127.0.0.1:$orderer_port" \
      -peer-addrs "127.0.0.1:$peer0_port,127.0.0.1:$peer1_port" \
      -clients "$CLIENTS" -txs "$TXS" -accounts "$ACCOUNTS" $LOAD_WL_FLAGS \
      | tee "$LOGDIR/load-$slug.log"

  # Open-loop burst against the same (already converged) cluster: the pacer
  # must sustain >=95% of the target rate, and the merged stage traces must
  # cover >=99% of the burst's committed transactions end to end.
  echo "--- open-loop burst: $TARGET_TPS tx/s for $OL_DURATION ($OL_WORKLOAD) ---"
  "$BIN/sharpnet" load -orderer "127.0.0.1:$orderer_port" \
      -peer-addrs "127.0.0.1:$peer0_port,127.0.0.1:$peer1_port" \
      -target-tps "$TARGET_TPS" -duration "$OL_DURATION" -workers "$OL_WORKERS" \
      -workload "$OL_WORKLOAD" -accounts "$ACCOUNTS" \
      | tee "$LOGDIR/openloop-$slug.log"
  ACHIEVED=$(sed -n 's/^ACHIEVED_TPS //p' "$LOGDIR/openloop-$slug.log")
  COVERAGE=$(sed -n 's/^TRACE_COVERAGE_PCT //p' "$LOGDIR/openloop-$slug.log")
  if [ -z "$ACHIEVED" ] || [ -z "$COVERAGE" ]; then
    echo "open-loop: ACHIEVED_TPS / TRACE_COVERAGE_PCT machine lines missing" >&2
    exit 1
  fi
  if ! awk -v a="$ACHIEVED" -v t="$TARGET_TPS" 'BEGIN{exit !(a >= 0.95*t)}'; then
    echo "open-loop: achieved $ACHIEVED tx/s, need >=95% of $TARGET_TPS" >&2
    exit 1
  fi
  if ! awk -v c="$COVERAGE" 'BEGIN{exit !(c >= 99)}'; then
    echo "open-loop: trace coverage $COVERAGE%, need >=99%" >&2
    exit 1
  fi
  echo "open-loop: $ACHIEVED tx/s achieved, $COVERAGE% trace coverage"

  teardown
  echo "=== $system: OK ==="
done
echo "cluster smoke passed for: $SYSTEMS"
