// Package node assembles process-per-node deployments of the EOV network:
// an ordering process (consensus + replicated orderers + shadow validation
// behind a TCP server), standalone validating-peer processes (endorsement +
// pipelined commit fed by a reconnecting block subscription), and the wire
// client that drives them. cmd/fabricnode is a thin flag wrapper around
// this package; the in-process cluster tests boot the same types on
// 127.0.0.1 listeners, so the OS-process deployment and the test cluster
// exercise identical code.
//
// The division of labour mirrors deployed Fabric:
//
//	client ──proposal──▶ peer (simulate + endorse)
//	client ──submit────▶ orderer (dedup, schedule, cut, seal verdicts)
//	orderer ──blocks───▶ every peer (validate, assert sealed verdicts, commit)
//	client ──poll──────▶ orderer (result by TxID, resolved at seal)
//
// Identity in this mode comes from the deterministic dev MSP
// (identity.Deterministic): every process derives the cluster's well-known
// key pairs locally, so real ed25519 endorsements verify across process
// boundaries without a key-exchange protocol. See that function's caveats.
package node

import (
	"fmt"
	"sync"

	"fabricsharp/internal/chaincode"
	"fabricsharp/internal/fabric"
	"fabricsharp/internal/ledger"
	"fabricsharp/internal/protocol"
	"fabricsharp/internal/scenario"
	"fabricsharp/internal/sched"
)

// DefaultResultHorizon bounds the orderer's result map: results older than
// this many resolutions are forgotten (a poller that slow has timed out
// anyway).
const DefaultResultHorizon = 1 << 17

// defaultContracts is the contract suite every node deploys: the scenario
// registry's union, so every replica can endorse every registered scenario
// and all replicas agree on the deployed set.
func defaultContracts() []chaincode.Contract {
	return scenario.AllContracts()
}

// needsMVCC reports whether the system's validation phase must re-check
// serializability — the switch every peer must agree on with the orderer.
func needsMVCC(system sched.System) (bool, error) {
	s, err := sched.New(system, sched.Options{})
	if err != nil {
		return false, err
	}
	return s.NeedsMVCCValidation(), nil
}

// resultStore is a bounded TxID → result map with FIFO eviction.
type resultStore struct {
	mu      sync.Mutex
	results map[protocol.TxID]fabric.TxResult
	order   []protocol.TxID
	horizon int
}

func newResultStore(horizon int) *resultStore {
	if horizon <= 0 {
		horizon = DefaultResultHorizon
	}
	return &resultStore{results: map[protocol.TxID]fabric.TxResult{}, horizon: horizon}
}

func (r *resultStore) put(res fabric.TxResult) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, dup := r.results[res.TxID]; !dup {
		r.order = append(r.order, res.TxID)
	} else if res.Code == protocol.AbortDuplicate && prev.Code != protocol.AbortDuplicate {
		// A client that resubmitted across an orderer failover can race its
		// own first submission: the replay resolves AbortDuplicate *after*
		// the original's real verdict. The first real verdict wins — it is
		// what the sealed block records.
		return
	}
	r.results[res.TxID] = res
	for len(r.order) > r.horizon {
		delete(r.results, r.order[0])
		r.order = r.order[1:]
	}
}

func (r *resultStore) get(id protocol.TxID) (fabric.TxResult, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	res, ok := r.results[id]
	return res, ok
}

// committedTxCount walks the chain tallying committed verdicts — the
// ledger-side count the chaos smoke compares against the client-side one
// (each TxID is sealed with exactly one verdict, so the tally is immune to
// client retries).
func committedTxCount(chain *ledger.Chain) uint64 {
	var total uint64
	chain.ForEach(func(blk *ledger.Block) bool {
		total += uint64(blk.CommittedCount())
		return true
	})
	return total
}

// errOnce records a node's first fatal error.
type errOnce struct {
	mu  sync.Mutex
	err error
}

func (e *errOnce) set(err error) {
	e.mu.Lock()
	if e.err == nil {
		e.err = err
	}
	e.mu.Unlock()
}

func (e *errOnce) get() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

func nonEmpty(names []string, what string) error {
	if len(names) == 0 {
		return fmt.Errorf("node: %s must not be empty", what)
	}
	return nil
}
