package statedb

import (
	"encoding/binary"
	"encoding/hex"
	"hash/fnv"
	"sort"
)

// fingerprintHasher accumulates length-prefixed byte strings into an
// FNV-128a digest. A tiny wrapper keeps StateFingerprint readable.
type fingerprintHasher struct {
	h interface {
		Sum([]byte) []byte
		Write([]byte) (int, error)
	}
}

func newFNV() *fingerprintHasher { return &fingerprintHasher{h: fnv.New128a()} }

func (f *fingerprintHasher) write(b []byte) {
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(b)))
	_, _ = f.h.Write(n[:])
	_, _ = f.h.Write(b)
}

func (f *fingerprintHasher) writeString(s string) { f.write([]byte(s)) }

func (f *fingerprintHasher) sum() string { return hex.EncodeToString(f.h.Sum(nil)) }

func sortStrings(s []string) { sort.Strings(s) }
