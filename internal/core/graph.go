package core

import (
	"sort"

	"fabricsharp/internal/bloom"
	"fabricsharp/internal/seqno"
)

// txNode is one transaction in the dependency graph G. Edges are stored as
// explicit successor links (p.succ holds every node depending on p), and the
// full ancestor closure is summarized in the `anti` bloom filter
// (anti_reachable in the paper: the set of transactions that can reach this
// node, plus the node itself).
type txNode struct {
	id        TxID
	arrival   uint64 // monotone arrival index: the deterministic tie-break
	startTS   seqno.Seq
	endTS     seqno.Seq // zero until committed
	committed bool
	pruned    bool
	readKeys  []string
	writeKeys []string
	succ      map[*txNode]struct{}
	anti      *bloom.Filter
	age       uint64 // block recency of the node's newest committed ancestor (incl. itself)
}

// graph is the dependency graph with its reachability machinery.
type graph struct {
	nodes       map[TxID]*txNode
	bloomBits   uint64
	bloomHashes int
	arrivals    uint64
}

func newGraph(bloomBits uint64, bloomHashes int) *graph {
	return &graph{
		nodes:       make(map[TxID]*txNode),
		bloomBits:   bloomBits,
		bloomHashes: bloomHashes,
	}
}

func (g *graph) newNode(id TxID, startTS seqno.Seq, readKeys, writeKeys []string) *txNode {
	g.arrivals++
	n := &txNode{
		id:        id,
		arrival:   g.arrivals,
		startTS:   startTS,
		readKeys:  readKeys,
		writeKeys: writeKeys,
		succ:      make(map[*txNode]struct{}),
		anti:      bloom.New(g.bloomBits, g.bloomHashes),
	}
	n.anti.Add(string(id))
	return n
}

// lookup resolves an index hit to a live node; pruned or unknown
// transactions are beyond the reachability horizon and are safely ignored
// (Section 4.6's age argument).
func (g *graph) lookup(id TxID) (*txNode, bool) {
	n, ok := g.nodes[id]
	if !ok || n.pruned {
		return nil, false
	}
	return n, true
}

// hasCycle implements the arrival-time reorderability test of Algorithm 2:
// inserting txn with the given predecessors and successors closes a cycle
// iff some successor can already reach some predecessor. Bloom false
// positives report a cycle where none exists — a preventive abort, never a
// missed cycle.
func hasCycle(pred, succ map[*txNode]struct{}) bool {
	if len(pred) == 0 || len(succ) == 0 {
		return false
	}
	for p := range pred {
		for s := range succ {
			if p == s {
				return true
			}
			// anti(p) = {ancestors of p} ∪ {p}; a hit means s -> ... -> p.
			if p.anti.MayContain(string(s.id)) {
				return true
			}
		}
	}
	return false
}

// insert wires txn into the graph per Algorithm 4: predecessor edges are
// created, the ancestor filter is assembled from the predecessors', and the
// filter (which includes txn itself) is pushed to every node reachable from
// txn's successors. nextBlock is M, the presumptive commit block, used as
// the age hint. It returns the number of nodes traversed (the "# of hops"
// statistic of Figure 13).
func (g *graph) insert(txn *txNode, pred, succ map[*txNode]struct{}, nextBlock uint64) (hops int) {
	for p := range pred {
		p.succ[txn] = struct{}{}
		txn.anti.Union(p.anti)
	}
	for s := range succ {
		txn.succ[s] = struct{}{}
	}
	txn.age = nextBlock
	g.nodes[txn.id] = txn

	// Push txn's ancestor set (which includes txn) to all descendants and
	// refresh their age: txn is a new, soon-to-commit ancestor of each.
	visited := map[*txNode]struct{}{txn: {}}
	stack := make([]*txNode, 0, len(succ))
	for s := range succ {
		stack = append(stack, s)
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if _, seen := visited[n]; seen || n.pruned {
			continue
		}
		visited[n] = struct{}{}
		hops++
		n.anti.Union(txn.anti)
		if n.age < nextBlock {
			n.age = nextBlock
		}
		for s := range n.succ {
			stack = append(stack, s)
		}
	}
	return hops
}

// topoOrder returns every live node in a deterministic topological order
// (Kahn's algorithm with arrival-index tie-breaking). It is used both for
// block formation (the pending sub-sequence of this order is the commit
// order) and for the reachability rebuilds.
func (g *graph) topoOrder() []*txNode {
	indeg := make(map[*txNode]int, len(g.nodes))
	var all []*txNode
	for _, n := range g.nodes {
		if n.pruned {
			continue
		}
		all = append(all, n)
		if _, ok := indeg[n]; !ok {
			indeg[n] = 0
		}
		for s := range n.succ {
			if !s.pruned {
				indeg[s]++
			}
		}
	}
	// Ready min-heap by arrival index, seeded with all zero-indegree nodes.
	var ready nodeHeap
	for _, n := range all {
		if indeg[n] == 0 {
			ready.push(n)
		}
	}
	out := make([]*txNode, 0, len(all))
	for ready.len() > 0 {
		n := ready.pop()
		out = append(out, n)
		for s := range n.succ {
			if s.pruned {
				continue
			}
			indeg[s]--
			if indeg[s] == 0 {
				ready.push(s)
			}
		}
	}
	if len(out) != len(all) {
		// The arrival-time cycle test makes this unreachable; failing loud
		// beats emitting an unserializable block.
		panic("core: dependency graph contains a cycle")
	}
	return out
}

// rebuildReachability recomputes every live node's ancestor filter from the
// explicit edges (fresh filters, forward propagation in topological order).
// This is the relay mechanism of Section 4.4: periodically resetting the
// filters bounds their fill ratio — and with it the false-positive rate —
// without ever losing a true member.
func (g *graph) rebuildReachability() {
	order := g.topoOrder()
	for _, n := range order {
		n.anti = bloom.New(g.bloomBits, g.bloomHashes)
		n.anti.Add(string(n.id))
	}
	for _, n := range order {
		for s := range n.succ {
			if !s.pruned {
				s.anti.Union(n.anti)
			}
		}
	}
}

// bumpCommitted refreshes ages after the given nodes committed in block B:
// each is now a committed ancestor of everything it reaches, so descendants'
// ages rise to B. The arrival-time hint may have underestimated (the
// transaction might have been deferred to a later block); re-bumping at
// commit keeps pruning strictly conservative.
func (g *graph) bumpCommitted(committed []*txNode, block uint64) {
	visited := make(map[*txNode]struct{}, len(committed))
	var stack []*txNode
	for _, n := range committed {
		stack = append(stack, n)
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if _, seen := visited[n]; seen || n.pruned {
			continue
		}
		visited[n] = struct{}{}
		if n.age < block {
			n.age = block
		}
		for s := range n.succ {
			stack = append(stack, s)
		}
	}
}

// prune removes committed nodes whose age fell below the horizon: no future
// transaction can be part of a cycle through them (Section 4.6). Pending
// nodes are never pruned. It returns the number of pruned nodes.
func (g *graph) prune(horizon uint64) int {
	pruned := 0
	for id, n := range g.nodes {
		if !n.committed || n.pruned {
			continue
		}
		if n.age < horizon {
			n.pruned = true
			delete(g.nodes, id)
			pruned++
		}
	}
	if pruned > 0 {
		// Drop dangling successor links so traversals stay tight.
		for _, n := range g.nodes {
			for s := range n.succ {
				if s.pruned {
					delete(n.succ, s)
				}
			}
		}
	}
	return pruned
}

// size returns the number of live nodes.
func (g *graph) size() int { return len(g.nodes) }

// nodeHeap is a minimal min-heap of nodes ordered by arrival index; it keeps
// the topological sort deterministic across replicas.
type nodeHeap struct{ ns []*txNode }

func (h *nodeHeap) len() int { return len(h.ns) }

func (h *nodeHeap) push(n *txNode) {
	h.ns = append(h.ns, n)
	i := len(h.ns) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.ns[parent].arrival <= h.ns[i].arrival {
			break
		}
		h.ns[parent], h.ns[i] = h.ns[i], h.ns[parent]
		i = parent
	}
}

func (h *nodeHeap) pop() *txNode {
	top := h.ns[0]
	last := len(h.ns) - 1
	h.ns[0] = h.ns[last]
	h.ns = h.ns[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.ns) && h.ns[l].arrival < h.ns[smallest].arrival {
			smallest = l
		}
		if r < len(h.ns) && h.ns[r].arrival < h.ns[smallest].arrival {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.ns[i], h.ns[smallest] = h.ns[smallest], h.ns[i]
		i = smallest
	}
	return top
}

// sortedKeys returns map keys in sorted order (deterministic iteration for
// the ww restoration pass).
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// restoreWW implements Algorithm 5: after the commit order `order` has been
// fixed, write-write dependencies between pending transactions are installed
// so that future cycle checks see them. For every key written by more than
// one newly committed transaction, adjacent writer pairs not already
// connected receive an edge and the downstream reachability is refreshed in
// one topologically ordered pass from the collected heads.
func (g *graph) restoreWW(pw map[string]map[*txNode]struct{}, position map[*txNode]int) (heads []*txNode) {
	headSet := make(map[*txNode]struct{})
	for _, key := range sortedKeys(pw) {
		writers := make([]*txNode, 0, len(pw[key]))
		for n := range pw[key] {
			writers = append(writers, n)
		}
		if len(writers) < 2 {
			continue
		}
		sort.Slice(writers, func(i, j int) bool { return position[writers[i]] < position[writers[j]] })
		for i := 0; i+1 < len(writers); i++ {
			t1, t2 := writers[i], writers[i+1]
			if t2.anti.MayContain(string(t1.id)) {
				// Already connected (possibly via another key): the edge is
				// implicit, as with Txn0 -> Txn3 in Figure 9.
				continue
			}
			t1.succ[t2] = struct{}{}
			t2.anti.Union(t1.anti)
			headSet[t2] = struct{}{}
		}
	}
	if len(headSet) == 0 {
		return nil
	}
	// Propagate from the heads in topological order so each node's filter
	// is final before its successors consume it (Figure 9's single-pass
	// iteration).
	reachable := make(map[*txNode]struct{})
	var mark func(n *txNode)
	mark = func(n *txNode) {
		if _, ok := reachable[n]; ok || n.pruned {
			return
		}
		reachable[n] = struct{}{}
		for s := range n.succ {
			mark(s)
		}
	}
	for h := range headSet {
		mark(h)
		heads = append(heads, h)
	}
	for _, n := range g.topoOrder() {
		if _, ok := reachable[n]; !ok {
			continue
		}
		for s := range n.succ {
			if !s.pruned {
				s.anti.Union(n.anti)
			}
		}
	}
	sort.Slice(heads, func(i, j int) bool { return heads[i].arrival < heads[j].arrival })
	return heads
}
