package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"fabricsharp/internal/protocol"
	"fabricsharp/internal/seqno"
)

func TestNodeHeapOrdersByArrival(t *testing.T) {
	prop := func(arrivals []uint32) bool {
		var h nodeHeap
		for _, a := range arrivals {
			h.push(&txNode{arrival: uint64(a)})
		}
		prev := uint64(0)
		for h.len() > 0 {
			n := h.pop()
			if n.arrival < prev {
				return false
			}
			prev = n.arrival
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTopoOrderRespectsEdgesProperty(t *testing.T) {
	// Random DAGs built like the manager builds them (edges only from
	// earlier-arrival to later-arrival nodes or vice versa through explicit
	// succ links): the topological order must respect every edge.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := newGraph(1<<10, 3)
		n := 20 + rng.Intn(30)
		nodes := make([]*txNode, n)
		for i := range nodes {
			nodes[i] = g.newNode(TxID(fmt.Sprintf("n%d", i)), seqno.Snapshot(0), nil, nil)
			g.nodes[nodes[i].id] = nodes[i]
		}
		// Random forward edges (i -> j with i < j keeps it acyclic).
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(4) == 0 {
					nodes[i].succ[nodes[j]] = struct{}{}
				}
			}
		}
		order := g.topoOrder()
		pos := map[*txNode]int{}
		for i, nd := range order {
			pos[nd] = i
		}
		for _, u := range nodes {
			for v := range u.succ {
				if pos[u] >= pos[v] {
					return false
				}
			}
		}
		return len(order) == n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRebuildReachabilityMatchesExactClosure(t *testing.T) {
	// After a rebuild, every true ancestor must be reported reachable (no
	// false negatives vs an exact closure computed independently).
	rng := rand.New(rand.NewSource(7))
	g := newGraph(1<<12, 4)
	const n = 40
	nodes := make([]*txNode, n)
	for i := range nodes {
		nodes[i] = g.newNode(TxID(fmt.Sprintf("n%d", i)), seqno.Snapshot(0), nil, nil)
		g.nodes[nodes[i].id] = nodes[i]
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Intn(5) == 0 {
				nodes[i].succ[nodes[j]] = struct{}{}
			}
		}
	}
	g.rebuildReachability()
	// Exact ancestor closure by DFS over reversed edges.
	ancestors := make([]map[int]bool, n)
	for i := range ancestors {
		ancestors[i] = map[int]bool{i: true}
	}
	for i := 0; i < n; i++ { // topological: edges only go forward
		for s := range nodes[i].succ {
			var si int
			fmt.Sscanf(string(s.id), "n%d", &si)
			for a := range ancestors[i] {
				ancestors[si][a] = true
			}
		}
	}
	for i := 0; i < n; i++ {
		for a := range ancestors[i] {
			if !nodes[i].anti.MayContain(string(nodes[a].id)) {
				t.Fatalf("rebuild lost ancestor n%d of n%d", a, i)
			}
		}
	}
}

func TestPruneRemovesOnlyOldCommitted(t *testing.T) {
	g := newGraph(1<<10, 3)
	mk := func(id string, committed bool, age uint64) *txNode {
		n := g.newNode(TxID(id), seqno.Snapshot(0), nil, nil)
		n.committed = committed
		n.age = age
		g.nodes[n.id] = n
		return n
	}
	old := mk("old", true, 3)
	fresh := mk("fresh", true, 9)
	pending := mk("pending", false, 1) // pending never pruned
	fresh.succ[old] = struct{}{}       // dangling link must be cleaned

	pruned := g.prune(5)
	if pruned != 1 {
		t.Fatalf("pruned %d, want 1", pruned)
	}
	if _, ok := g.lookup("old"); ok {
		t.Error("old committed node survived")
	}
	if _, ok := g.lookup("fresh"); !ok {
		t.Error("fresh node pruned")
	}
	if _, ok := g.lookup("pending"); !ok {
		t.Error("pending node pruned")
	}
	if len(fresh.succ) != 0 {
		t.Error("dangling successor link not cleaned")
	}
	_ = pending
}

func TestHasCycleDirectAndTransitive(t *testing.T) {
	g := newGraph(1<<10, 3)
	a := g.newNode("a", seqno.Snapshot(0), nil, nil)
	b := g.newNode("b", seqno.Snapshot(0), nil, nil)
	c := g.newNode("c", seqno.Snapshot(0), nil, nil)
	g.nodes["a"], g.nodes["b"], g.nodes["c"] = a, b, c
	// a -> b -> c (installed via insert to maintain filters).
	g.insert(a, nil, map[*txNode]struct{}{}, 1)
	g.insert(b, map[*txNode]struct{}{a: {}}, nil, 1)
	g.insert(c, map[*txNode]struct{}{b: {}}, nil, 1)

	// New node with pred=c and succ=a would close a 4-cycle: a->b->c->new->a.
	if !hasCycle(map[*txNode]struct{}{c: {}}, map[*txNode]struct{}{a: {}}) {
		t.Error("transitive cycle not detected")
	}
	// pred=a, succ=c is fine (same direction as existing edges).
	if hasCycle(map[*txNode]struct{}{a: {}}, map[*txNode]struct{}{c: {}}) {
		t.Error("false cycle on forward edges (possible but should not happen with these filters)")
	}
	// Same node as pred and succ: 2-cycle.
	if !hasCycle(map[*txNode]struct{}{b: {}}, map[*txNode]struct{}{b: {}}) {
		t.Error("self pred/succ cycle not detected")
	}
	// Empty sets never cycle.
	if hasCycle(nil, map[*txNode]struct{}{a: {}}) || hasCycle(map[*txNode]struct{}{a: {}}, nil) {
		t.Error("cycle with empty side")
	}
}

func TestManagerStatsTimersAdvance(t *testing.T) {
	m := NewManager(Options{})
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("k%d", i%5)
		if _, err := m.OnArrival(TxID(fmt.Sprintf("t%d", i)), 0, []string{key}, []string{key + "w"}); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := m.OnBlockFormation(); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.IdentifyConflictNS <= 0 || st.UpdateGraphNS <= 0 || st.IndexRecordNS <= 0 {
		t.Errorf("arrival timers did not advance: %+v", st)
	}
	if st.ComputeOrderNS <= 0 || st.PersistNS <= 0 {
		t.Errorf("formation timers did not advance: %+v", st)
	}
	if st.MeanHops() < 0 {
		t.Error("negative hops")
	}
}

func TestDifferentialPruningNeverMissesCycles(t *testing.T) {
	// Aggressive pruning (tiny max_span) vs no pruning (huge max_span) on
	// the same stream: the pruned manager may abort MORE (staleness) but
	// every transaction it ACCEPTS must also be serializable — checked via
	// the oracle on its commits.
	for seed := int64(0); seed < 5; seed++ {
		committed := runRandomWorkload(t, seed, 500, 6, 17, Options{MaxSpan: 2, RelayBlocks: 2})
		if ok, witness := serializabilityOracle(committed); !ok {
			t.Fatalf("seed %d: aggressive pruning admitted a cycle: %v", seed, witness)
		}
	}
}

var _ = protocol.Valid // keep protocol imported for the helpers above
