// Package fabric is the runnable, real-time in-process EOV blockchain: the
// library mode of this repository. It wires the membership service, the
// chaincode runtime, endorsing peers with snapshot reads (Algorithm 1), the
// Kafka-model ordering service, replicated orderers running any of the five
// schedulers, and validating peers committing to hash-chained ledgers — the
// full transaction lifecycle of Section 2.1 over Go channels instead of
// gRPC.
//
// A minimal session:
//
//	net, _ := fabric.NewNetwork(fabric.Options{System: sched.SystemSharp})
//	defer net.Close()
//	client, _ := net.NewClient("alice")
//	res, _ := client.Submit("kv", "put", "greeting", "hello")
//	val, _ := client.Query("kv", "get", "greeting")
package fabric

import (
	"fmt"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"fabricsharp/internal/chaincode"
	"fabricsharp/internal/commit"
	"fabricsharp/internal/consensus"
	"fabricsharp/internal/identity"
	"fabricsharp/internal/kvstore"
	"fabricsharp/internal/ledger"
	"fabricsharp/internal/protocol"
	"fabricsharp/internal/scenario"
	"fabricsharp/internal/sched"
	"fabricsharp/internal/seqno"
	"fabricsharp/internal/statedb"
	"fabricsharp/internal/trace"
	"fabricsharp/internal/transport"
	"fabricsharp/internal/validation"
	"fabricsharp/internal/workload"
)

// Options configures a network.
type Options struct {
	// System selects the ordering-phase concurrency control
	// (default sched.SystemSharp).
	System sched.System
	// Peers is the number of endorsing/validating peers (default 4, the
	// paper's setup).
	Peers int
	// Orderers is the number of replicated orderers (default 2). All run
	// the same scheduler on the same consensus stream; the first one
	// delivers blocks.
	Orderers int
	// BlockSize cuts a block at this many pending transactions
	// (default 100).
	BlockSize int
	// BlockTimeout cuts a partial block (default 500ms).
	BlockTimeout time.Duration
	// Contracts to deploy; defaults to the scenario registry's full set
	// (scenario.AllContracts), so a default network can endorse any
	// registered scenario.
	Contracts []chaincode.Contract
	// Genesis, when non-empty, is the block-0 write set every replica
	// installs before the first block seals: peer state databases through
	// workload.SeedGenesis, and each orderer's shadow state at the same
	// workload.GenesisVersion — the two must agree or shadow MVCC verdicts
	// would diverge from peer validation. Scenario-driven deployments fill
	// it from scenario.Scenario.GenesisWrites. Ignored on a DataDir resume
	// whose stored state already contains the genesis.
	Genesis []protocol.WriteItem
	// MaxSpan is Sharp's pruning horizon (default 10).
	MaxSpan uint64
	// CompactEvery enables the orderers' deterministic intern-table epoch
	// compaction: every CompactEvery sealed blocks, each scheduler rebuilds
	// its key-interning state at cut time keeping only keys referenced by
	// retained (above-horizon) entries — bounding orderer memory under
	// unbounded key spaces. Cuts happen at identical consensus-stream
	// positions on every replica, so the rebuilt tables (and all KeyID
	// remappings) are bit-identical across orderers, and a restart through
	// FastForward resumes the same epoch schedule (the trigger is a pure
	// function of sealed block numbers). 0 (default) keeps the pre-PR-4
	// append-only tables.
	CompactEvery uint64
	// SubmitTimeout bounds Client.Submit waiting for a commit
	// (default 10s).
	SubmitTimeout time.Duration
	// HashCommitment enables the Section 3.5 two-phase submission: clients
	// sequence a digest commitment first and disclose the payload after;
	// orderers process disclosures in commitment order, which blinds
	// order-choosing adversaries to transaction contents (see
	// Client.SubmitCommitted).
	HashCommitment bool
	// DataDir, when non-empty, persists peer 0's ledger and latest state in
	// kvstore databases under it; a network booted again on the same
	// directory resumes from the stored chain (crash recovery is inherited
	// from the kvstore WAL).
	DataDir string
	// Ordering, when set, injects an externally built consensus service —
	// typically a transport.RaftService joining this process to a Raft
	// ordering cluster over TCP — instead of constructing an in-process one
	// from Consensus/RaftNodes. Every process consuming the same replicated
	// stream seals byte-identical blocks, which is what makes a multi-process
	// ordering cluster interchangeable with the in-process backends. The
	// network takes ownership: Close closes it.
	Ordering consensus.Service
	// Consensus selects the ordering service backend: "kafka" (default,
	// the paper's setup) or "raft" (the crash-fault replicated log that
	// replaced Kafka in later Fabric versions). The schedulers are
	// oblivious to the choice. Ignored when Ordering is set.
	Consensus string
	// RaftNodes sizes the raft cluster (default 3; kafka ignores it).
	RaftNodes int
	// CommitQueueDepth buffers each peer's block-delivery channel (default
	// commit.DefaultQueueDepth). Ordering only blocks when a peer falls this
	// many blocks behind.
	CommitQueueDepth int
	// DedupHorizon bounds the orderers' duplicate-suppression memory: a
	// TxID first seen while block B was being assembled is forgotten once
	// block B+DedupHorizon seals (default DefaultDedupHorizon). Eviction
	// runs at cut time — a stream-determined position — so the dedup
	// decision stays identical on every replica; the horizon trades
	// replay-protection depth for bounded memory under sustained traffic.
	DedupHorizon uint64
	// ValidationWorkers caps each peer's intra-block validation parallelism
	// (default: GOMAXPROCS divided among the peers, since they all validate
	// a delivered block concurrently).
	ValidationWorkers int
	// RemotePeers, when non-empty, runs the network as an *ordering-only*
	// process: no local peers are built, and the named peers — living in
	// other OS processes — are the validating set. Their deterministic
	// public keys (identity.Deterministic) are registered with the MSP so
	// endorsements signed across the wire verify here, and the endorsement
	// policy is any-of the named peers, exactly as in loopback mode.
	// Sealed blocks leave through attached transport.Delivery
	// implementations (AttachDelivery), and transaction results resolve at
	// seal time from the shadow verdicts — which the agreement property
	// guarantees equal the codes every remote peer will derive. Mutually
	// exclusive with Peers and DataDir.
	RemotePeers []string
	// OnResult, when set, observes every transaction result the lead
	// replica resolves (commits, early aborts, duplicates) — the hook the
	// process-per-node orderer uses to serve result polls to wire clients.
	// Called from pipeline goroutines; implementations must be fast and
	// thread-safe.
	OnResult func(TxResult)
	// Tracer, when set, records stage timestamps (order, seal) for every
	// transaction the lead orderer processes — write-only side telemetry
	// outside the deterministic scope (see internal/trace). Nil disables
	// recording at zero cost.
	Tracer *trace.Tracer
	// Rescue enables post-order speculative re-execution: MVCC-aborted
	// transactions re-run against the block's committed prefix at every
	// replica (orderer shadow and peer committers alike), and the rescued
	// write sets commit under the Rescued verdict. A no-op for systems whose
	// ordering phase already guarantees serializability (they never produce
	// MVCC aborts). Orderers running with rescue keep a value-tracking
	// shadow, trading memory for the re-execution capability.
	Rescue bool
}

func (o Options) withDefaults() Options {
	if o.System == "" {
		o.System = sched.SystemSharp
	}
	if len(o.RemotePeers) == 0 && o.Peers == 0 {
		o.Peers = 4
	}
	if o.Orderers == 0 {
		o.Orderers = 2
	}
	if o.BlockSize == 0 {
		o.BlockSize = 100
	}
	if o.BlockTimeout == 0 {
		o.BlockTimeout = 500 * time.Millisecond
	}
	if len(o.Contracts) == 0 {
		o.Contracts = scenario.AllContracts()
	}
	if o.MaxSpan == 0 {
		o.MaxSpan = 10
	}
	if o.SubmitTimeout == 0 {
		o.SubmitTimeout = 10 * time.Second
	}
	if o.Consensus == "" {
		o.Consensus = "kafka"
	}
	if o.RaftNodes == 0 {
		o.RaftNodes = 3
	}
	if o.DedupHorizon == 0 {
		o.DedupHorizon = DefaultDedupHorizon
	}
	return o
}

// DefaultDedupHorizon is the default Options.DedupHorizon: deep enough that
// a duplicate would have to arrive over a thousand blocks after the
// original to slip through, shallow enough that the dedup map stays bounded
// under sustained million-transaction traffic.
const DefaultDedupHorizon = 1024

// TxResult reports a transaction's fate.
type TxResult struct {
	TxID  protocol.TxID
	Code  protocol.ValidationCode
	Block uint64 // 0 when dropped before the ledger
}

// Committed reports whether the transaction made it into the state —
// validated cleanly or rescued by post-order re-execution.
func (r TxResult) Committed() bool { return r.Code.Committed() }

// Network is a running blockchain network.
type Network struct {
	opts     Options
	msp      *identity.Service
	registry *chaincode.Registry
	policy   identity.Policy
	kafka    consensus.Service
	peers    []*Peer
	orderers []*orderer

	// submission is where endorsed envelopes enter ordering; in-process it
	// is the consensus service itself. deliveries is where the lead
	// orderer's sealed blocks go: the loopback fan-out to local committers
	// (when the network has local peers) plus anything attached later
	// (TCP block streams). Both sides of the seam speak the same
	// interfaces a socket-fed deployment does.
	submission transport.Submission
	deliveryMu sync.RWMutex
	deliveries []transport.Delivery
	waitersMu  sync.Mutex
	waiters    map[protocol.TxID]chan TxResult
	txSeq      uint64
	seqMu      sync.Mutex
	closeOnce  sync.Once
	done       chan struct{}
	wg         sync.WaitGroup
	closers    []interface{ Close() error }

	// ackMu/pendingAcks implement the per-block commit barrier: a result
	// resolves once every peer has committed its block, with the lead
	// peer's validation codes as the authoritative verdicts.
	ackMu       sync.Mutex
	pendingAcks map[uint64]*blockAck

	// Fatal-error plumbing (a poisoned block must not crash the process):
	// the first failure is recorded and fatalCh closed, atomically under
	// errMu; submitters and orderers observe it and stop.
	errMu    sync.Mutex
	fatalErr error
	fatalCh  chan struct{}
}

// blockAck tracks how many peers have committed a block and the lead peer's
// codes for it.
type blockAck struct {
	txs   []*protocol.Transaction
	codes []protocol.ValidationCode
	acks  int
}

// Peer is an endorsing + validating peer with its own state, ledger, and
// pipelined committer.
type Peer struct {
	id        *identity.Identity
	state     *statedb.DB
	chain     *ledger.Chain
	committer *commit.Committer
}

// State exposes the peer's state database (read-only use).
func (p *Peer) State() *statedb.DB { return p.state }

// Chain exposes the peer's ledger.
func (p *Peer) Chain() *ledger.Chain { return p.chain }

// Committer exposes the peer's commit-pipeline stage (stats, idleness).
func (p *Peer) Committer() *commit.Committer { return p.committer }

// NewNetwork boots a network.
func NewNetwork(opts Options) (*Network, error) {
	if len(opts.RemotePeers) > 0 {
		if opts.Peers != 0 {
			return nil, fmt.Errorf("fabric: RemotePeers and Peers are mutually exclusive (a network is ordering-only or has local peers, never both)")
		}
		if opts.DataDir != "" {
			return nil, fmt.Errorf("fabric: DataDir persistence belongs to peer processes, not an ordering-only network")
		}
	}
	opts = opts.withDefaults()
	var ordering consensus.Service
	switch {
	case opts.Ordering != nil:
		ordering = opts.Ordering
	case opts.Consensus == "kafka":
		ordering = consensus.NewKafka()
	case opts.Consensus == "raft":
		ordering = consensus.NewRaft(opts.RaftNodes)
	default:
		return nil, fmt.Errorf("fabric: unknown consensus backend %q", opts.Consensus)
	}
	n := &Network{
		opts:        opts,
		msp:         identity.NewService(),
		registry:    chaincode.NewRegistry(opts.Contracts...),
		kafka:       ordering,
		waiters:     map[protocol.TxID]chan TxResult{},
		done:        make(chan struct{}),
		fatalCh:     make(chan struct{}),
		pendingAcks: map[uint64]*blockAck{},
	}
	n.submission = ordering
	// Ordering-only mode: the validating peers live in other processes.
	// Register their deterministic public keys so endorsements produced
	// across the wire verify against this MSP exactly as local ones would.
	for _, name := range opts.RemotePeers {
		id := identity.Deterministic(name, identity.RolePeer)
		if err := n.msp.Register(name, identity.RolePeer, id.Public()); err != nil {
			return nil, err
		}
	}
	var peerIDs []string
	peerIDs = append(peerIDs, opts.RemotePeers...)
	for i := 0; i < opts.Peers; i++ {
		name := fmt.Sprintf("peer%d", i)
		id, err := n.msp.Enroll(name, identity.RolePeer)
		if err != nil {
			return nil, err
		}
		var (
			stateOpts statedb.Options
			chainKV   *kvstore.DB
		)
		if opts.DataDir != "" && i == 0 {
			// Peer 0 is the durable replica: its ledger blocks and latest
			// state live in kvstore databases under DataDir.
			stateKV, err := kvstore.Open(kvstore.Options{Dir: filepath.Join(opts.DataDir, "state")})
			if err != nil {
				return nil, err
			}
			n.closers = append(n.closers, stateKV)
			stateOpts.Backing = stateKV
			if chainKV, err = kvstore.Open(kvstore.Options{Dir: filepath.Join(opts.DataDir, "blocks")}); err != nil {
				return nil, err
			}
			n.closers = append(n.closers, chainKV)
		}
		state, err := statedb.New(stateOpts)
		if err != nil {
			return nil, err
		}
		chain, err := ledger.NewChain(chainKV)
		if err != nil {
			return nil, err
		}
		// Fresh replicas install the scenario genesis before any block
		// commits; a DataDir resume already holds it (its persisted state or
		// chain is non-empty) and must not re-apply block 0.
		if chain.Len() == 0 && state.Keys() == 0 {
			if err := workload.SeedGenesis(state, opts.Genesis); err != nil {
				return nil, fmt.Errorf("fabric: seeding %s genesis: %w", name, err)
			}
		}
		n.peers = append(n.peers, &Peer{id: id, state: state, chain: chain})
		peerIDs = append(peerIDs, name)
	}
	// The paper's endorsement policy: any single peer endorses
	// (Section 5.1), so any of the peers can spread the load.
	n.policy = identity.AnyPeerOf(peerIDs...)

	for i := 0; i < opts.Orderers; i++ {
		name := fmt.Sprintf("orderer%d", i)
		if _, err := n.msp.Enroll(name, identity.RoleOrderer); err != nil {
			return nil, err
		}
		scheduler, err := sched.New(opts.System, sched.Options{MaxSpan: opts.MaxSpan, CompactEvery: opts.CompactEvery})
		if err != nil {
			return nil, err
		}
		chain, err := ledger.NewChain(nil)
		if err != nil {
			return nil, err
		}
		shadow := validation.NewShadowState()
		if opts.Rescue {
			// Rescue re-executes chaincode at the orderer, which needs the
			// committed values, not just versions.
			shadow = validation.NewValueShadowState()
		}
		// The shadow must agree with the peers' seeded states key for key:
		// an endorsement over a genesis key carries workload.GenesisVersion
		// in its read set, and the shadow validator has to see that same
		// version or its sealed verdict would diverge from peer validation.
		// Seeding precedes replayStoredChain so a resumed chain replays on
		// top of genesis exactly as it originally committed.
		for _, w := range opts.Genesis {
			if w.Delete {
				continue
			}
			shadow.Seed(w.Key, w.Value, workload.GenesisVersion())
		}
		o := &orderer{
			net:       n,
			name:      name,
			scheduler: scheduler,
			chain:     chain,
			deliver:   i == 0, // the lead orderer delivers to peers
			shadow:    shadow,
			rescue:    opts.Rescue && scheduler.NeedsMVCCValidation(),
			vopts: validation.Options{
				MVCC:   scheduler.NeedsMVCCValidation(),
				MSP:    n.msp,
				Policy: n.policy,
			},
			seen:        map[protocol.TxID]bool{},
			seenByBlock: map[uint64][]protocol.TxID{},
			seenFloor:   1,
		}
		if opts.HashCommitment {
			o.broker = NewCommitmentBroker()
		}
		n.orderers = append(n.orderers, o)
	}
	// Every peer gets a pipelined committer: the validation/commit stage of
	// the EOV pipeline, decoupled from ordering by a buffered delivery
	// channel. MVCC runs only for the systems whose ordering phase does not
	// already guarantee serializability (Figure 8).
	mvcc := n.orderers[0].scheduler.NeedsMVCCValidation()
	workers := opts.ValidationWorkers
	if workers == 0 && opts.Peers > 0 {
		// All peers validate the same block concurrently; divide the cores
		// among them rather than oversubscribing by the peer count.
		if workers = runtime.GOMAXPROCS(0) / opts.Peers; workers < 1 {
			workers = 1
		}
	}
	for i, p := range n.peers {
		i, p := i, p
		p.committer = commit.New(commit.Config{
			Name:  fmt.Sprintf("peer%d", i),
			State: p.state,
			Chain: p.chain,
			Validation: commit.Options{
				Options:  validation.Options{MVCC: mvcc, MSP: n.msp, Policy: n.policy},
				Workers:  workers,
				Rescue:   opts.Rescue,
				Registry: n.registry,
			},
			QueueDepth: opts.CommitQueueDepth,
			OnCommit: func(blk *ledger.Block, codes []protocol.ValidationCode) {
				n.peerCommitted(i, blk, codes)
			},
			OnError: n.fail,
		})
	}
	// When resuming from disk, adopt the stored chain everywhere before the
	// orderers start consuming the stream.
	if opts.DataDir != "" && n.peers[0].chain.Len() > 0 {
		if err := n.replayStoredChain(); err != nil {
			return nil, err
		}
	}
	// The loopback delivery: the same interface a TCP block stream
	// implements, wired to the local committers' channels.
	if len(n.peers) > 0 {
		n.deliveries = append(n.deliveries, loopbackDelivery{n})
	}
	for _, p := range n.peers {
		p.committer.Start()
	}
	for _, o := range n.orderers {
		n.wg.Add(1)
		go o.run()
	}
	return n, nil
}

// loopbackDelivery fans a sealed block out to every local peer's committer —
// the in-process implementation of the transport seam. Deliver blocks only
// on a full committer queue (backpressure), never errors.
type loopbackDelivery struct{ n *Network }

// Deliver implements transport.Delivery.
func (l loopbackDelivery) Deliver(blk *ledger.Block) error {
	for _, p := range l.n.peers {
		p.committer.Deliver(blk)
	}
	return nil
}

// AttachDelivery adds a consumer for the lead orderer's sealed blocks —
// e.g. the TCP block-stream notifier of a process-per-node orderer. The
// delivery is invoked in block order from the lead orderer's goroutine; a
// returned error is fatal to the network.
func (n *Network) AttachDelivery(d transport.Delivery) {
	n.deliveryMu.Lock()
	n.deliveries = append(n.deliveries, d)
	n.deliveryMu.Unlock()
}

// dispatch hands a sealed block to every attached delivery.
func (n *Network) dispatch(blk *ledger.Block) {
	n.deliveryMu.RLock()
	deliveries := n.deliveries
	n.deliveryMu.RUnlock()
	for _, d := range deliveries {
		if err := d.Deliver(blk); err != nil {
			n.fail(fmt.Errorf("fabric: block %d delivery: %w", blk.Header.Number, err))
			return
		}
	}
}

// SubmitEnvelope feeds an externally built envelope (a transaction decoded
// off the wire, typically) into the ordering service — the Submission side
// of the transport seam. The caller is responsible for having precomputed
// the transaction's key caches.
func (n *Network) SubmitEnvelope(env consensus.Envelope) error {
	if err := n.Err(); err != nil {
		return fmt.Errorf("fabric: network failed: %w", err)
	}
	return n.submission.Submit(env)
}

// peerCommitted is each committer's completion callback. Results resolve on
// the designated lead peer's (peer 0) verdicts, once every peer has
// committed the block — so a Submit that returns implies read-your-writes
// on any peer. The schedulers are NOT fed from here: commit feedback is
// derived deterministically by each orderer's shadow validator at cut time,
// so this barrier only settles client waiters.
func (n *Network) peerCommitted(peerIdx int, blk *ledger.Block, codes []protocol.ValidationCode) {
	num := blk.Header.Number
	n.ackMu.Lock()
	ack := n.pendingAcks[num]
	if ack == nil {
		ack = &blockAck{}
		n.pendingAcks[num] = ack
	}
	ack.acks++
	if peerIdx == 0 {
		ack.txs = blk.Transactions
		ack.codes = codes
	}
	complete := ack.acks == len(n.peers)
	if complete {
		delete(n.pendingAcks, num)
	}
	n.ackMu.Unlock()
	if !complete {
		return
	}
	for i, tx := range ack.txs {
		n.resolve(tx.ID, TxResult{TxID: tx.ID, Code: ack.codes[i], Block: num})
	}
}

// fail records the network's first fatal error and unblocks everyone waiting
// on it. The process stays alive: submitters get the error, orderers and
// committers quiesce.
func (n *Network) fail(err error) {
	n.errMu.Lock()
	if n.fatalErr == nil {
		n.fatalErr = err
		close(n.fatalCh)
	}
	n.errMu.Unlock()
}

// Err returns the first fatal pipeline error, nil while healthy.
func (n *Network) Err() error {
	n.errMu.Lock()
	defer n.errMu.Unlock()
	return n.fatalErr
}

// Fatal returns a channel closed on the first fatal pipeline error.
func (n *Network) Fatal() <-chan struct{} { return n.fatalCh }

// replayStoredChain distributes peer 0's persisted blocks to the in-memory
// peers — through the same committer apply path live commits use — and to
// the orderers, rebuilding each orderer's shadow version state from the
// stored verdicts, then fast-forwards every scheduler past the stored
// height. Restart semantics are clean-shutdown: nothing was pending across
// the restart, so new transactions (whose snapshots are at or above the
// stored height) cannot conflict with pre-restart history and the
// schedulers may start from an empty dependency graph — but the shadow
// state MUST resume exactly where the peers' state databases do, or the
// first post-restart shadow validation would diverge from peer validation.
func (n *Network) replayStoredChain() error {
	ref := n.peers[0]
	var walkErr error
	ref.chain.ForEach(func(b *ledger.Block) bool {
		if len(b.Validation) != len(b.Transactions) {
			walkErr = fmt.Errorf("fabric: stored block %d missing validation metadata", b.Header.Number)
			return false
		}
		for _, p := range n.peers[1:] {
			if walkErr = p.committer.ReplayStored(b); walkErr != nil {
				return false
			}
		}
		for _, o := range n.orderers {
			blk := *b
			if walkErr = o.chain.Append(&blk); walkErr != nil {
				return false
			}
			// Rescued verdicts carry no write sets in the block: re-derive
			// them by re-running the deterministic rescue phase against the
			// shadow's replayed state, asserting the sealed digest.
			var rescueWrites [][]protocol.WriteItem
			if blockHasRescued(b) {
				if !o.shadow.TracksValues() {
					walkErr = fmt.Errorf("fabric: stored block %d carries rescued verdicts; the network must boot with Rescue enabled to replay it", b.Header.Number)
					return false
				}
				out, err := commit.ReplayRescue(o.shadow, b, n.registry)
				if err != nil {
					walkErr = fmt.Errorf("fabric: %w", err)
					return false
				}
				rescueWrites = out.Writes
			}
			o.shadow.ApplyRescued(b.Header.Number, b.Transactions, b.Validation, rescueWrites)
		}
		return true
	})
	if walkErr != nil {
		return walkErr
	}
	height, _ := ref.chain.Height()
	for _, o := range n.orderers {
		// Dedup buckets resume past the stored chain too, so the first
		// post-restart eviction does not walk empty pre-restart blocks.
		o.seenFloor = height + 1
		if err := o.scheduler.FastForward(height); err != nil {
			return err
		}
	}
	return nil
}

// blockHasRescued reports whether any stored verdict is Rescued.
func blockHasRescued(b *ledger.Block) bool {
	for _, c := range b.Validation {
		if c == protocol.Rescued {
			return true
		}
	}
	return false
}

// Close shuts the network down: the orderers stop consuming consensus, the
// commit pipeline drains every delivered block, and only then do the
// durable stores close.
func (n *Network) Close() {
	n.closeOnce.Do(func() {
		close(n.done)
		n.kafka.Close()
	})
	n.wg.Wait()
	for _, p := range n.peers {
		p.committer.Close()
	}
	for _, c := range n.closers {
		_ = c.Close()
	}
}

// Peer returns peer i.
func (n *Network) Peer(i int) *Peer { return n.peers[i] }

// Orderers returns the number of orderer replicas.
func (n *Network) Orderers() int { return len(n.orderers) }

// OrdererChain exposes orderer i's sealed chain (agreement checks).
func (n *Network) OrdererChain(i int) *ledger.Chain { return n.orderers[i].chain }

// Height returns the lead peer's committed block height; an ordering-only
// network reports the lead orderer's sealed-chain height instead.
func (n *Network) Height() uint64 {
	if len(n.peers) == 0 {
		h, _ := n.orderers[0].chain.Height()
		return h
	}
	return n.peers[0].state.Height()
}

// WaitIdle blocks until every submitted transaction has been resolved and
// the commit pipeline has drained (every peer's delivery queue empty), or
// the timeout elapses; it reports whether the network went idle. A fatal
// pipeline error returns false immediately — the network has quiesced but
// outstanding transactions will never resolve (see Err).
func (n *Network) WaitIdle(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if n.Err() != nil {
			return false
		}
		n.waitersMu.Lock()
		idle := len(n.waiters) == 0
		n.waitersMu.Unlock()
		if idle && n.committersIdle() {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return false
}

// committersIdle reports whether every peer's committer has fully
// processed everything delivered to it.
func (n *Network) committersIdle() bool {
	for _, p := range n.peers {
		if !p.committer.Idle() {
			return false
		}
	}
	return true
}

// awaitResult waits for a submitted transaction's outcome: the commit
// barrier's result, the network's fatal error, or the submit timeout. Both
// submit paths (Submit, SubmitCommitted) share it so the subtle
// committed-result-wins-over-fatal race handling has exactly one copy.
func (n *Network) awaitResult(id protocol.TxID, ch <-chan TxResult) (TxResult, error) {
	deadline := time.Now().Add(n.opts.SubmitTimeout)
	select {
	case res := <-ch:
		return res, nil
	case <-n.fatalCh:
		// The transaction may have resolved around the instant the fatal
		// signal fired; a durably committed result must win over the error.
		if res, ok := n.fatalResult(id, ch, deadline); ok {
			return res, nil
		}
		return TxResult{}, fmt.Errorf("fabric: transaction %s: network failed: %w", id, n.Err())
	case <-time.After(time.Until(deadline)):
		// Same handshake as the fatal path: a result already in flight
		// wins, and otherwise the waiter is removed so it cannot leak.
		if res, ok := n.claimWaiter(id, ch); ok {
			return res, nil
		}
		return TxResult{}, fmt.Errorf("fabric: transaction %s timed out", id)
	}
}

// fatalResult is the fatal-path tail of a submit. The pipeline keeps
// draining after a fatal error — blocks already delivered still commit on
// healthy peers — so first wait (up to SubmitTimeout, preserving Submit's
// latency contract) for the committers to go idle: a transaction in flight
// resolves normally rather than being reported failed after it durably
// commits. Then, resolve deletes the waiter under waitersMu before
// sending, so: absent from the map means a result send is in flight — wait
// for it and report success. Still present after the drain means no result
// is ever coming — remove the waiter so it cannot leak, and report
// failure.
func (n *Network) fatalResult(id protocol.TxID, ch <-chan TxResult, deadline time.Time) (TxResult, bool) {
	// Normally bounded by queue depth × commit latency: committers always
	// make progress (a failed one keeps consuming, applying nothing). The
	// deadline — the submit's original one, so the overall SubmitTimeout
	// contract holds — covers a wedged committer; there the timeout wins.
	for !n.committersIdle() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	return n.claimWaiter(id, ch)
}

// claimWaiter settles a submit that is giving up: if resolve already
// claimed the waiter (absent from the map), a result send is guaranteed in
// flight — wait for it and report success. Otherwise remove the waiter so
// it cannot leak, and report that no result is coming.
func (n *Network) claimWaiter(id protocol.TxID, ch <-chan TxResult) (TxResult, bool) {
	n.waitersMu.Lock()
	_, pending := n.waiters[id]
	if pending {
		delete(n.waiters, id)
	}
	n.waitersMu.Unlock()
	if pending {
		return TxResult{}, false
	}
	return <-ch, true
}

// resolve delivers a transaction result to its waiter and the OnResult
// observer. Only lead-replica paths call it, so an observer sees each
// result exactly once.
func (n *Network) resolve(id protocol.TxID, res TxResult) {
	if n.opts.OnResult != nil {
		n.opts.OnResult(res)
	}
	n.waitersMu.Lock()
	ch, ok := n.waiters[id]
	if ok {
		delete(n.waiters, id)
	}
	n.waitersMu.Unlock()
	if ok {
		ch <- res
	}
}

// snapshotReader performs Algorithm 1's snapshot reads on a peer.
type snapshotReader struct {
	state *statedb.DB
	snap  uint64
}

func (r snapshotReader) Read(key string) ([]byte, seqno.Seq, bool, error) {
	vv, ok, err := r.state.GetAt(key, r.snap)
	if err != nil || !ok {
		return nil, seqno.Seq{}, false, err
	}
	return vv.Value, vv.Version, true, nil
}

// ReadRange implements chaincode.RangeReader over the same snapshot.
func (r snapshotReader) ReadRange(start, end string) ([]string, error) {
	return r.state.KeysInRange(start, end, r.snap), nil
}

// simulateOnPeer runs a read-only evaluation against the peer's latest
// snapshot (the query path — no endorsement, no ordering).
func simulateOnPeer(contract chaincode.Contract, function string, args []string, p *Peer) (protocol.RWSet, []byte, error) {
	return chaincode.SimulateFull(contract, function, args, snapshotReader{state: p.state, snap: p.state.Height()})
}

// Endorse simulates a proposal on this peer against its latest block
// snapshot and signs the result.
func (p *Peer) Endorse(registry *chaincode.Registry, tx *protocol.Transaction) ([]byte, error) {
	contract, ok := registry.Get(tx.Contract)
	if !ok {
		return nil, fmt.Errorf("fabric: unknown contract %q", tx.Contract)
	}
	snap := p.state.Height()
	rwset, result, err := chaincode.SimulateFull(contract, tx.Function, tx.Args, snapshotReader{state: p.state, snap: snap})
	if err != nil {
		return nil, fmt.Errorf("fabric: simulation failed: %w", err)
	}
	tx.SnapshotBlock = snap
	tx.RWSet = rwset
	tx.Endorsements = append(tx.Endorsements, protocol.Endorsement{
		EndorserID: p.id.ID,
		Signature:  p.id.Sign(tx.Digest()),
	})
	return result, nil
}
