// Package reexec implements post-order speculative re-execution: a
// deterministic rescue phase that takes a sealed block's MVCC-aborted
// transactions and re-runs their chaincode against a Block-STM-style
// multi-version scratch overlaying the committed state, so hot-key
// workloads commit near the conflict-free ceiling instead of throwing half
// the block away (XOX Fabric, Block-STM).
//
// The phase is optimistic and parallel but its outcome is serial-equivalent
// to a fixed post-order: first the block's valid transactions in block order
// (that part is the block's normal effect), then the rescued transactions in
// block order. Re-executions therefore read the block's FINAL valid state —
// they happen "after" the block — and their committed writes land at
// positions above every in-block position (N+1..N+R for a block of N
// transactions, see commit.WritesForRescued), so last-writer-wins ordering
// matches the serial order. Because no valid transaction ever observes a
// rescued write, rescuing can never invalidate a sealed Valid verdict.
// Every replica that runs the phase over the same base state and the same
// sealed block derives bit-identical codes and write sets:
//
//   - Rescue candidates (MVCCConflict verdicts whose invocation is carried
//     in the transaction) are partitioned into key-disjoint conflict groups
//     by the same union-find rule internal/commit uses; groups share no keys
//     (a containment check below keeps that true even for re-executed key
//     sets), so they run concurrently without observing each other.
//   - Within a group, rounds of speculative execution run every pending
//     candidate in parallel against the round-start scratch, then a serial
//     accept pass in block order validates each candidate's recorded reads
//     against the current scratch versions. The pass finalizes candidates
//     until the first invalidated one — everything at or after it re-executes
//     next round. Finalization therefore happens in strict position order,
//     which is exactly why a finalized verdict is final: all scratch writes
//     ordered below a candidate are settled when it is accepted.
//   - The first pending candidate always validates (nothing ordered below it
//     can change between its execution and its accept), so every round makes
//     progress and the loop terminates in at most |group| rounds.
//
// A candidate whose re-execution fails (e.g. a transfer from an account
// that still does not exist) with validated reads is deterministically left
// aborted; likewise one whose re-executed read/write keys escape its
// declared read/write key set (which would break group disjointness — no
// shipped contract does this, since their key sets are argument-determined).
//
// Versioning inside the run: seed entries (the valid transactions' writes)
// are tagged with their in-block position, scratch entries (accepted
// rescues) with theirs; a transaction is either valid or a candidate, so the
// tags never collide, and base versions always come from earlier blocks — a
// read's provenance is unambiguous. The tags order only the candidates among
// themselves: the seed is visible to every candidate in full (post-order),
// and a scratch entry shadows any seed entry for the same key. The phase's
// outcome is sealed into the block as a digest over the rescued write sets;
// peers re-derive it and byte-assert, the same replica-agreement contract
// PR 3 established for verdicts.
package reexec

import (
	"crypto/sha256"
	"encoding/binary"
	"runtime"

	"fabricsharp/internal/chaincode"
	"fabricsharp/internal/conflict"
	"fabricsharp/internal/protocol"
	"fabricsharp/internal/seqno"
	"fabricsharp/internal/statedb"
)

// StateSource resolves reads against the state committed before the block
// being rescued. Implementations must be safe for concurrent readers and
// must return versions from earlier blocks only (the committer's statedb at
// height block-1, or the orderer's value-tracking shadow). The returned
// value must not be mutated by the caller.
type StateSource interface {
	Read(key string) (value []byte, version seqno.Seq, found bool)
}

// Options configures a rescue run.
type Options struct {
	// Registry resolves the contracts to re-execute. Transactions whose
	// contract is not deployed (or that carry no invocation) are not
	// candidates and keep their abort verdict.
	Registry *chaincode.Registry
	// Workers caps execution parallelism; 0 means GOMAXPROCS. The worker
	// count never affects the outcome, only the wall clock.
	Workers int
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Outcome is the deterministic result of one rescue run.
type Outcome struct {
	// Codes are the final per-transaction codes: the input codes with every
	// successfully rescued MVCCConflict flipped to Rescued.
	Codes []protocol.ValidationCode
	// Writes holds, per transaction position, the re-executed write set of
	// rescued transactions (nil for every other position).
	Writes [][]protocol.WriteItem
	// Digest commits to the rescued positions and write sets; nil when no
	// transaction was rescued. Replicas byte-assert it against the sealed
	// block.
	Digest []byte
	// Attempted counts rescue candidates; Rescued those that committed.
	Attempted int
	Rescued   int
	// Rounds is the maximum speculative round count over all groups (0 when
	// nothing was attempted); Groups the number of key-disjoint groups.
	Rounds int
	Groups int
}

// StillAborted counts candidates the rescue could not commit.
func (o Outcome) StillAborted() int { return o.Attempted - o.Rescued }

// Run re-executes blk's MVCC-aborted transactions against base and returns
// the rescued outcome. codes is not mutated; txs and base are only read.
func Run(base StateSource, block uint64, txs []*protocol.Transaction, codes []protocol.ValidationCode, opts Options) Outcome {
	out := Outcome{Codes: append([]protocol.ValidationCode(nil), codes...)}
	if opts.Registry == nil {
		return out
	}
	contracts := make([]chaincode.Contract, len(txs))
	candidate := make([]bool, len(txs))
	for i, tx := range txs {
		if codes[i] != protocol.MVCCConflict || tx.Function == "" {
			continue
		}
		c, ok := opts.Registry.Get(tx.Contract)
		if !ok {
			continue
		}
		contracts[i] = c
		candidate[i] = true
		out.Attempted++
	}
	if out.Attempted == 0 {
		return out
	}

	// The valid transactions' declared writes seed the run: candidates
	// serialize after the whole block, so they see the block's final valid
	// state. The seed is immutable for the whole run and shared read-only by
	// every group.
	seed := map[string][]mvEntry{}
	for i, tx := range txs {
		if codes[i] != protocol.Valid {
			continue
		}
		for _, w := range tx.RWSet.Writes {
			seed[w.Key] = append(seed[w.Key], mvEntry{pos: uint32(i + 1), value: w.Value, deleted: w.Delete})
		}
	}

	groups := conflict.Partition(txs, func(i int) bool { return candidate[i] })
	out.Groups = len(groups)
	out.Writes = make([][]protocol.WriteItem, len(txs))
	rounds := make([]int, len(groups))
	workers := opts.workers()
	// Groups are key-disjoint, so they write disjoint elements of
	// out.Codes/out.Writes and never observe each other's scratch.
	conflict.ParallelFor(len(groups), workers, func(gi int) {
		g := &groupState{base: base, block: block, seed: seed, scratch: map[string][]mvEntry{}}
		rounds[gi] = runGroup(g, groups[gi], txs, contracts, out.Codes, out.Writes, workers)
	})

	for i, code := range out.Codes {
		if code == protocol.Rescued {
			out.Rescued++
		} else {
			out.Writes[i] = nil
		}
	}
	for _, r := range rounds {
		if r > out.Rounds {
			out.Rounds = r
		}
	}
	out.Digest = WriteSetDigest(out.Codes, out.Writes)
	return out
}

// runGroup drives one conflict group to completion and returns its round
// count. It finalizes candidates strictly in position order (see the package
// comment for why that makes finalization sound).
func runGroup(g *groupState, group []int, txs []*protocol.Transaction, contracts []chaincode.Contract,
	codes []protocol.ValidationCode, writes [][]protocol.WriteItem, workers int) int {
	type execResult struct {
		rw  protocol.RWSet
		err error
	}
	pending := group
	rounds := 0
	for len(pending) > 0 {
		rounds++
		// Speculative phase: every pending candidate executes against the
		// round-start scratch (frozen — mutations happen only in the accept
		// pass below), so results are independent of scheduling.
		exec := make([]execResult, len(pending))
		conflict.ParallelFor(len(pending), workers, func(k int) {
			i := pending[k]
			tx := txs[i]
			rw, err := chaincode.SimulateAttempt(contracts[i], tx.Function, tx.Args, &groupReader{g: g, limit: uint32(i + 1)})
			exec[k] = execResult{rw: rw, err: err}
		})
		// Accept pass: serial, block order, stops at the first candidate
		// whose recorded reads no longer match the scratch (a lower accepted
		// candidate overwrote them this round — it must re-execute).
		done := 0
		for k, i := range pending {
			if !g.readsCurrent(uint32(i+1), exec[k].rw.Reads) {
				break
			}
			done = k + 1
			if exec[k].err != nil {
				continue // deterministic failure on final reads: stays aborted
			}
			if !contained(txs[i], exec[k].rw) {
				continue // escaped its declared key set: stays aborted
			}
			codes[i] = protocol.Rescued
			writes[i] = exec[k].rw.Writes
			g.commit(uint32(i+1), exec[k].rw.Writes)
		}
		pending = pending[done:]
	}
	return rounds
}

// contained reports whether a re-execution stayed inside the transaction's
// declared key sets: writes within the declared write keys, reads within the
// declared read or write keys. Group partitioning reasons over the declared
// sets, so an escape would let two groups touch the same key; such a
// candidate is deterministically left aborted instead.
func contained(tx *protocol.Transaction, rw protocol.RWSet) bool {
	declaredW := tx.RWSet.WriteKeys()
	declaredR := tx.RWSet.ReadKeys()
	allowed := make(map[string]uint8, len(declaredW)+len(declaredR))
	for _, k := range declaredR {
		allowed[k] |= 1
	}
	for _, k := range declaredW {
		allowed[k] |= 2
	}
	for _, w := range rw.Writes {
		if allowed[w.Key]&2 == 0 {
			return false
		}
	}
	for _, r := range rw.Reads {
		if allowed[r.Key] == 0 {
			return false
		}
	}
	return true
}

// mvEntry is one multi-version scratch write: the block-relative position
// that produced it and the value (or tombstone).
type mvEntry struct {
	pos     uint32
	value   []byte
	deleted bool
}

// groupState is one group's view of the block: the shared immutable seed
// (the valid transactions' writes — the block's final valid state), the
// group-local scratch of accepted rescue writes (ascending position —
// finalization order guarantees it), and the pre-block base state.
type groupState struct {
	base    StateSource
	block   uint64
	seed    map[string][]mvEntry
	scratch map[string][]mvEntry
}

// resolve returns the value and version visible to a candidate read at
// position limit (exclusive): the highest-position scratch write below limit
// if any (an earlier-accepted rescue — rescues serialize in block order among
// themselves), else the last seed write regardless of position (the block's
// final valid state — rescues serialize after ALL valid transactions), else
// the base state.
func (g *groupState) resolve(key string, limit uint32) ([]byte, seqno.Seq, bool) {
	best, ok := latestBelow(g.scratch[key], limit)
	if !ok {
		if entries := g.seed[key]; len(entries) > 0 {
			best, ok = entries[len(entries)-1], true
		}
	}
	if ok {
		if best.deleted {
			return nil, seqno.Seq{}, false
		}
		return best.value, seqno.Commit(g.block, best.pos), true
	}
	return g.base.Read(key)
}

func latestBelow(entries []mvEntry, limit uint32) (mvEntry, bool) {
	for i := len(entries) - 1; i >= 0; i-- {
		if entries[i].pos < limit {
			return entries[i], true
		}
	}
	return mvEntry{}, false
}

// readsCurrent reports whether every recorded read still resolves to the
// version it observed (zero version matching "absent") — the same freshness
// rule validation.ReadsFresh applies, against the scratch's version vector.
func (g *groupState) readsCurrent(limit uint32, reads []protocol.ReadItem) bool {
	for _, r := range reads {
		_, ver, found := g.resolve(r.Key, limit)
		observedExisting := r.Version != seqno.Seq{}
		if found != observedExisting {
			return false
		}
		if found && ver != r.Version {
			return false
		}
	}
	return true
}

// commit records an accepted candidate's writes in the scratch. Accepted
// positions are strictly increasing, so appending keeps entries sorted.
func (g *groupState) commit(pos uint32, ws []protocol.WriteItem) {
	for _, w := range ws {
		g.scratch[w.Key] = append(g.scratch[w.Key], mvEntry{pos: pos, value: w.Value, deleted: w.Delete})
	}
}

// groupReader adapts a groupState to the chaincode.StateReader the
// simulation harness consumes. It never errors: the multi-version scratch
// and the base are both in memory.
type groupReader struct {
	g     *groupState
	limit uint32
}

func (r *groupReader) Read(key string) ([]byte, seqno.Seq, bool, error) {
	v, ver, ok := r.g.resolve(key, r.limit)
	return v, ver, ok, nil
}

// WriteSetDigest commits to a block's rescued positions and re-executed
// write sets: for each Rescued position in block order, the 1-based
// position, the write count, and each write's key, value, and delete flag
// (length-prefixed). It returns nil when no position is Rescued, so blocks
// without rescues stay byte-identical to the pre-rescue encoding.
func WriteSetDigest(codes []protocol.ValidationCode, writes [][]protocol.WriteItem) []byte {
	h := sha256.New()
	any := false
	var n [4]byte
	u32 := func(v uint32) {
		binary.BigEndian.PutUint32(n[:], v)
		h.Write(n[:])
	}
	str := func(s []byte) {
		u32(uint32(len(s)))
		h.Write(s)
	}
	for i, code := range codes {
		if code != protocol.Rescued {
			continue
		}
		any = true
		u32(uint32(i + 1))
		ws := writes[i]
		u32(uint32(len(ws)))
		for _, w := range ws {
			str([]byte(w.Key))
			str(w.Value)
			if w.Delete {
				h.Write([]byte{1})
			} else {
				h.Write([]byte{0})
			}
		}
	}
	if !any {
		return nil
	}
	return h.Sum(nil)
}

// DBSource adapts the committed state database to a StateSource (the peer
// committer's base). The database's own locking covers the concurrent reads
// of the speculative phase; blocks are applied only after rescue completes,
// so the view is the pre-block height throughout a run.
func DBSource(db *statedb.DB) StateSource { return dbSource{db} }

type dbSource struct{ db *statedb.DB }

func (s dbSource) Read(key string) ([]byte, seqno.Seq, bool) {
	vv, ok := s.db.Get(key)
	if !ok {
		return nil, seqno.Seq{}, false
	}
	return vv.Value, vv.Version, true
}
