package main

import (
	"fmt"
	"strings"

	"fabricsharp/internal/scenario"
)

// clientFlags is the cross-validated subset of sharpnet's flags. Each mode
// accepts a specific flag shape; anything else is a misuse worth refusing
// loudly — a demo run silently ignoring -orderer, or a load run silently
// ignoring -expect-committed, reads as a passing check that never ran.
type clientFlags struct {
	Mode            string
	Orderers        []string
	Peers           []string
	Clients         int
	Txs             int
	Accounts        int
	Workload        string
	ExpectCommitted uint64
}

func (f clientFlags) validate() error {
	switch f.Mode {
	case "demo":
		if len(f.Orderers) != 0 || len(f.Peers) != 0 {
			return fmt.Errorf("demo mode runs an in-process network and ignores -orderer/-peer-addrs; use -mode load to drive a cluster")
		}
		if f.ExpectCommitted != 0 {
			return fmt.Errorf("-expect-committed is a check-mode flag")
		}
		if f.Workload != "" {
			return fmt.Errorf("-workload is a load-mode flag (demo runs its own contended counter workload)")
		}
		return f.validateWorkload()
	case "load":
		if len(f.Orderers) == 0 || len(f.Peers) == 0 {
			return fmt.Errorf("load mode requires -orderer and -peer-addrs")
		}
		if f.ExpectCommitted != 0 {
			return fmt.Errorf("-expect-committed is a check-mode flag; load mode prints COMMITTED_TOTAL for check to assert")
		}
		return f.validateWorkload()
	case "status":
		if len(f.Orderers) == 0 && len(f.Peers) == 0 {
			return fmt.Errorf("status mode needs -orderer and/or -peer-addrs to probe")
		}
		if f.Workload != "" {
			return fmt.Errorf("-workload is a load-mode flag")
		}
		return nil
	case "check":
		if len(f.Orderers) == 0 || len(f.Peers) == 0 {
			return fmt.Errorf("check mode requires -orderer and -peer-addrs")
		}
		if f.Workload != "" {
			return fmt.Errorf("-workload is a load-mode flag")
		}
		return nil
	case "":
		return fmt.Errorf("-mode is required (demo | load | status | check)")
	default:
		return fmt.Errorf("unknown mode %q (want demo, load, status, or check)", f.Mode)
	}
}

func (f clientFlags) validateWorkload() error {
	if f.Clients <= 0 {
		return fmt.Errorf("-clients must be positive, got %d", f.Clients)
	}
	if f.Txs <= 0 {
		return fmt.Errorf("-txs must be positive, got %d", f.Txs)
	}
	if f.Mode == "load" {
		if f.Workload != "" {
			if _, ok := scenario.Get(f.Workload); !ok {
				return fmt.Errorf("unknown -workload %q (have %s)", f.Workload, strings.Join(scenario.Names(), ", "))
			}
			if f.Accounts < 0 {
				return fmt.Errorf("-accounts must be non-negative with -workload (0 = scenario default), got %d", f.Accounts)
			}
		} else if f.Accounts <= 0 {
			return fmt.Errorf("-accounts must be positive, got %d", f.Accounts)
		}
	}
	return nil
}
