package node

import (
	"context"
	"fmt"
	"testing"
	"time"

	"fabricsharp/internal/scenario"
	"fabricsharp/internal/sched"
	"fabricsharp/internal/trace"
)

// bootScenarioCluster boots an orderer and n peers whose replicas all
// install the named scenario's genesis — the cluster shape `sharpnet load`
// drives (account pools seeded at block 0, not via setup transactions).
func bootScenarioCluster(t *testing.T, system sched.System, n int, workload string, accounts int) (*Orderer, []*Peer) {
	t.Helper()
	sc, ok := scenario.Get(workload)
	if !ok {
		t.Fatalf("unknown scenario %q", workload)
	}
	genesis := sc.GenesisWrites(scenario.Params{Accounts: accounts})
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("peer%d", i)
	}
	ord, err := StartOrderer(OrdererConfig{
		Listen:       "127.0.0.1:0",
		System:       system,
		PeerNames:    names,
		BlockSize:    25,
		BlockTimeout: 25 * time.Millisecond,
		Genesis:      genesis,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ord.Close() })
	peers := make([]*Peer, n)
	for i := range peers {
		p, err := StartPeer(PeerConfig{
			Name:         names[i],
			Listen:       "127.0.0.1:0",
			OrdererAddrs: []string{ord.Addr()},
			System:       system,
			PeerNames:    names,
			Genesis:      genesis,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		peers[i] = p
	}
	return ord, peers
}

func TestLoadOptionsValidate(t *testing.T) {
	cluster := []string{"127.0.0.1:1"}
	good := LoadOptions{Orderers: cluster, Peers: cluster, TargetTPS: 100, Duration: time.Second}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
	for name, opts := range map[string]LoadOptions{
		"no cluster":   {TargetTPS: 100, Duration: time.Second},
		"zero tps":     {Orderers: cluster, Peers: cluster, Duration: time.Second},
		"zero window":  {Orderers: cluster, Peers: cluster, TargetTPS: 100},
		"bad workload": {Orderers: cluster, Peers: cluster, TargetTPS: 100, Duration: time.Second, Workload: "nope"},
	} {
		if err := opts.Validate(); err == nil {
			t.Errorf("%s: invalid options accepted", name)
		}
	}
}

// TestOpenLoopLoadWithTraceCoverage is the end-to-end loop: an open-loop
// run against a live cluster, then the trace rings drained over the wire
// and merged into timelines covering the committed transactions.
func TestOpenLoopLoadWithTraceCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a full wire cluster")
	}
	ord, peers := bootScenarioCluster(t, sched.SystemSharp, 2, "msmallbank", 64)
	report, err := RunLoad(context.Background(), LoadOptions{
		Orderers:  []string{ord.Addr()},
		Peers:     peerAddrs(peers),
		TargetTPS: 100,
		Duration:  1500 * time.Millisecond,
		Workload:  "msmallbank",
		Accounts:  64,
		Workers:   8,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Committed == 0 {
		t.Fatal("open-loop run committed nothing")
	}
	if report.Failed > 0 {
		t.Fatalf("%d submissions failed", report.Failed)
	}
	if report.Offered+report.Dropped == 0 {
		t.Fatal("pacer scheduled nothing")
	}
	// Loose sanity floor only — the acceptance-level ≥95% assertion runs in
	// the cluster smoke where the machine isn't also running -race tests.
	if report.AchievedTPS < 0.3*float64(report.TargetTPS) {
		t.Errorf("achieved %.0f tps against target %d", report.AchievedTPS, report.TargetTPS)
	}
	if report.LatencyP50MS <= 0 || report.LatencyP99MS < report.LatencyP50MS {
		t.Errorf("implausible latency quantiles: p50=%.2fms p99=%.2fms", report.LatencyP50MS, report.LatencyP99MS)
	}

	// Every committed transaction must show a full timeline once the peers
	// finish applying delivered blocks; poll because commit-stage events
	// trail the client acks.
	addrs := append([]string{ord.Addr()}, peerAddrs(peers)...)
	deadline := time.Now().Add(30 * time.Second)
	var cov float64
	for {
		tls, dumps, err := FetchTimelines(addrs, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		cov = trace.Coverage(tls, report.CommittedIDs,
			trace.StageSubmit, trace.StageOrder, trace.StageSeal,
			trace.StageDeliver, trace.StageValidate, trace.StageCommit)
		if cov >= 0.99 {
			sum := trace.Summarize(tls)
			if sum.Total.N == 0 {
				t.Fatal("summary has no submit→commit totals")
			}
			for _, d := range dumps {
				if d.Recorded == 0 {
					t.Errorf("node %s recorded nothing", d.Node)
				}
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace coverage %.3f never reached 0.99 for %d committed txs", cov, len(report.CommittedIDs))
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestTraceDumpOverWire pins the per-role stage vocabulary: orderer rings
// carry submit/order/seal, peer rings carry deliver/validate/commit.
func TestTraceDumpOverWire(t *testing.T) {
	ord, peers := bootCluster(t, sched.SystemSharp, 2)
	client, err := DialClient("tracer", []string{ord.Addr()}, peerAddrs(peers), dialTimeout)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	committed, _ := driveContended(t, client, 20, 4)
	if committed == 0 {
		t.Fatal("nothing committed")
	}
	awaitConvergence(t, client, ord)

	ordDump, err := TraceAt(ord.Addr(), dialTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if ordDump.Role != "orderer" || ordDump.Node != "orderer0" {
		t.Fatalf("orderer dump identifies as %s/%s", ordDump.Node, ordDump.Role)
	}
	wantStages(t, "orderer", ordDump, trace.StageSubmit, trace.StageOrder, trace.StageSeal)
	for i, p := range peers {
		dump, err := TraceAt(p.Addr(), dialTimeout)
		if err != nil {
			t.Fatal(err)
		}
		if dump.Role != "peer" || dump.Node != fmt.Sprintf("peer%d", i) {
			t.Fatalf("peer dump identifies as %s/%s", dump.Node, dump.Role)
		}
		wantStages(t, dump.Node, dump, trace.StageDeliver, trace.StageValidate, trace.StageCommit)
	}
}

func wantStages(t *testing.T, node string, d trace.Dump, stages ...trace.Stage) {
	t.Helper()
	seen := map[trace.Stage]bool{}
	for _, ev := range d.Events {
		seen[ev.Stage] = true
	}
	for _, s := range stages {
		if !seen[s] {
			t.Errorf("%s ring has no %v events (stages seen: %v)", node, s, seen)
		}
	}
}
